//! One positive (finding-producing) and one negative (clean) fixture per
//! rule, driven through the real rule entry points. The fixtures live
//! under `tests/fixtures/` and are parsed with whatever workspace-
//! relative path the rule under test keys on, so path-scoped rules
//! (panic-free crates, the proto/shard file tables) see them exactly as
//! they would see real sources.

use dblsh_analyze::findings::Finding;
use dblsh_analyze::rules::{lock_order, simple, trace_parity, wire};
use dblsh_analyze::source::SourceFile;
use dblsh_analyze::workspace::Workspace;

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn file_as(rel_path: &str, name: &str) -> SourceFile {
    SourceFile::parse(rel_path.to_string(), &fixture(name), false)
}

fn ws_of(file: SourceFile) -> Workspace {
    Workspace {
        root: std::path::PathBuf::new(),
        files: vec![file],
    }
}

fn messages(findings: &[Finding]) -> String {
    findings
        .iter()
        .map(|f| format!("{}:{} [{}] {}\n", f.path, f.line, f.rule, f.message))
        .collect()
}

#[test]
fn unsafe_safety_fixtures() {
    let bad = simple::check_single(
        simple::UNSAFE_SAFETY,
        file_as("crates/data/src/fixture.rs", "unsafe_safety_bad.rs"),
    );
    assert_eq!(bad.len(), 1, "bad fixture: {}", messages(&bad));
    assert_eq!(bad[0].rule, simple::UNSAFE_SAFETY);

    let ok = simple::check_single(
        simple::UNSAFE_SAFETY,
        file_as("crates/data/src/fixture.rs", "unsafe_safety_ok.rs"),
    );
    assert!(ok.is_empty(), "ok fixture: {}", messages(&ok));
}

#[test]
fn panic_free_fixtures() {
    let bad = simple::check_single(
        simple::PANIC_FREE,
        file_as("crates/serve/src/fixture.rs", "panic_free_bad.rs"),
    );
    assert_eq!(
        bad.len(),
        2,
        "bad fixture has a panic! and an unwrap: {}",
        messages(&bad)
    );

    let ok = simple::check_single(
        simple::PANIC_FREE,
        file_as("crates/serve/src/fixture.rs", "panic_free_ok.rs"),
    );
    assert!(ok.is_empty(), "ok fixture: {}", messages(&ok));

    // The same panicking source outside the serving surface is not a
    // finding — the rule is path-scoped.
    let elsewhere = simple::check_single(
        simple::PANIC_FREE,
        file_as("crates/bench/src/fixture.rs", "panic_free_bad.rs"),
    );
    assert!(elsewhere.is_empty(), "path scope: {}", messages(&elsewhere));
}

#[test]
fn inline_suppression_silences_and_counts() {
    let ws = ws_of(file_as(
        "crates/serve/src/fixture.rs",
        "panic_free_suppressed.rs",
    ));
    let analysis = dblsh_analyze::analyze(&ws, &[], &[]);
    assert!(
        analysis.findings.is_empty(),
        "suppressed fixture: {}",
        messages(&analysis.findings)
    );
    assert_eq!(analysis.suppressed, 1);
}

#[test]
fn atomic_ordering_fixtures() {
    let bad = simple::check_single(
        simple::ATOMIC_ORDERING,
        file_as("crates/telemetry/src/fixture.rs", "atomic_ordering_bad.rs"),
    );
    assert_eq!(bad.len(), 1, "bad fixture: {}", messages(&bad));
    assert!(bad[0].message.contains("Relaxed"));

    let ok = simple::check_single(
        simple::ATOMIC_ORDERING,
        file_as("crates/telemetry/src/fixture.rs", "atomic_ordering_ok.rs"),
    );
    assert!(ok.is_empty(), "ok fixture: {}", messages(&ok));
}

#[test]
fn lock_order_fixtures() {
    let mut bad = Vec::new();
    lock_order::check(
        &ws_of(file_as("crates/serve/src/shard.rs", "lock_order_bad.rs")),
        &mut bad,
    );
    assert_eq!(bad.len(), 1, "bad fixture: {}", messages(&bad));
    assert!(bad[0].message.contains("inversion"), "{}", bad[0].message);

    let mut ok = Vec::new();
    lock_order::check(
        &ws_of(file_as("crates/serve/src/shard.rs", "lock_order_ok.rs")),
        &mut ok,
    );
    assert!(ok.is_empty(), "ok fixture: {}", messages(&ok));
}

#[test]
fn wire_fixtures() {
    let mut bad = Vec::new();
    wire::check(
        &ws_of(file_as("crates/net/src/proto.rs", "wire_bad.rs")),
        &mut bad,
    );
    assert_eq!(bad.len(), 1, "bad fixture: {}", messages(&bad));
    assert!(bad[0].message.contains("OP_GHOST"), "{}", bad[0].message);

    let mut ok = Vec::new();
    wire::check(
        &ws_of(file_as("crates/net/src/proto.rs", "wire_ok.rs")),
        &mut ok,
    );
    assert!(ok.is_empty(), "ok fixture: {}", messages(&ok));
}

#[test]
fn trace_parity_fixtures() {
    let mut bad = Vec::new();
    trace_parity::check(
        &ws_of(file_as("crates/core/src/fixture.rs", "trace_parity_bad.rs")),
        &mut bad,
    );
    assert_eq!(bad.len(), 1, "bad fixture: {}", messages(&bad));

    let mut orphan = Vec::new();
    trace_parity::check(
        &ws_of(file_as(
            "crates/core/src/fixture.rs",
            "trace_parity_orphan.rs",
        )),
        &mut orphan,
    );
    assert_eq!(orphan.len(), 1, "orphan fixture: {}", messages(&orphan));
    assert!(
        orphan[0].message.contains("no untraced sibling"),
        "{}",
        orphan[0].message
    );

    let mut ok = Vec::new();
    trace_parity::check(
        &ws_of(file_as("crates/core/src/fixture.rs", "trace_parity_ok.rs")),
        &mut ok,
    );
    assert!(ok.is_empty(), "ok fixture: {}", messages(&ok));
}
