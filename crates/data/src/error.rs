//! The workspace-wide error type.
//!
//! Every fallible operation on an [`crate::AnnIndex`] — building, dynamic
//! updates, and queries — reports failures through [`DbLshError`] instead
//! of panicking, so a serving process embedding an index can surface bad
//! requests to callers rather than dying.

use std::fmt;

/// Everything that can go wrong constructing, updating or querying an
/// index in this workspace.
#[derive(Debug, Clone, PartialEq)]
pub enum DbLshError {
    /// The dataset holds no points (or no *live* points, after removals).
    EmptyDataset,
    /// A point or query whose dimensionality does not match the index.
    DimensionMismatch {
        /// Dimensionality the index was built with.
        expected: usize,
        /// Dimensionality of the offending vector.
        got: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// A configuration value outside its legal domain. `param` names the
    /// knob; `reason` states the constraint it violated.
    InvalidParameter { param: &'static str, reason: String },
    /// The index cannot hold more points (ids are `u32` row indexes).
    CapacityExceeded {
        /// Maximum number of points the index can address.
        limit: usize,
    },
    /// An id that never named a point of this index.
    UnknownId { id: u32 },
    /// An operating-system I/O failure while saving or loading a
    /// snapshot. `op` names the operation ("read", "write", "create",
    /// ...); `error` carries the OS error text (kept as a string so the
    /// workspace error stays `Clone + PartialEq`).
    Io { op: &'static str, error: String },
    /// A snapshot stream that is not a snapshot, is truncated, fails a
    /// checksum, was written by an unsupported format version, or whose
    /// decoded contents violate an index invariant. Loading never
    /// panics on malformed bytes — every such condition surfaces here.
    CorruptSnapshot { reason: String },
    /// A serving layer refused the request because its admission queue
    /// is full. The request was *not* executed; retrying later is safe.
    Busy,
    /// The serving engine is draining or has shut down; the request was
    /// not (or can no longer be) accepted.
    Shutdown,
    /// The request sat in the serving queue past its deadline and was
    /// *not* executed — returning stale work would be worse than
    /// failing fast. Retrying (with a fresh deadline) is safe.
    DeadlineExceeded,
    /// A lock guarding mutable engine state was poisoned: a thread
    /// panicked while holding it, so the protected state may be torn.
    /// Mutation paths refuse to touch such state and surface this
    /// instead of panicking the serving worker; `what` names the lock.
    LockPoisoned { what: &'static str },
}

impl DbLshError {
    /// Shorthand for [`DbLshError::InvalidParameter`].
    pub fn invalid(param: &'static str, reason: impl Into<String>) -> Self {
        DbLshError::InvalidParameter {
            param,
            reason: reason.into(),
        }
    }

    /// Shorthand for [`DbLshError::CorruptSnapshot`].
    pub fn corrupt(reason: impl Into<String>) -> Self {
        DbLshError::CorruptSnapshot {
            reason: reason.into(),
        }
    }

    /// Wrap an [`std::io::Error`] from the snapshot path under the named
    /// operation.
    pub fn io(op: &'static str, error: std::io::Error) -> Self {
        DbLshError::Io {
            op,
            error: error.to_string(),
        }
    }

    /// Shorthand for [`DbLshError::LockPoisoned`].
    pub fn poisoned(what: &'static str) -> Self {
        DbLshError::LockPoisoned { what }
    }
}

impl fmt::Display for DbLshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbLshError::EmptyDataset => write!(f, "dataset holds no live points"),
            DbLshError::DimensionMismatch { expected, got } => write!(
                f,
                "dimensionality mismatch: index is {expected}-dimensional, vector is {got}-dimensional"
            ),
            DbLshError::NonFiniteCoordinate => {
                write!(f, "non-finite (NaN or infinite) coordinate rejected")
            }
            DbLshError::InvalidParameter { param, reason } => {
                write!(f, "invalid parameter `{param}`: {reason}")
            }
            DbLshError::CapacityExceeded { limit } => {
                write!(f, "index capacity exceeded: at most {limit} points are addressable")
            }
            DbLshError::UnknownId { id } => write!(f, "id {id} does not name a point of this index"),
            DbLshError::Io { op, error } => write!(f, "snapshot {op} failed: {error}"),
            DbLshError::CorruptSnapshot { reason } => {
                write!(f, "corrupt or unreadable snapshot: {reason}")
            }
            DbLshError::Busy => write!(f, "serving queue is full (admission control); retry later"),
            DbLshError::Shutdown => write!(f, "serving engine is draining or shut down"),
            DbLshError::DeadlineExceeded => write!(
                f,
                "request deadline expired while queued; the request was not executed"
            ),
            DbLshError::LockPoisoned { what } => write!(
                f,
                "{what} lock poisoned by a panicking writer; refusing to touch possibly-torn state"
            ),
        }
    }
}

impl std::error::Error for DbLshError {}

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, DbLshError>;

/// Validate a query vector and `k` against an index of dimensionality
/// `dim` — the shared prelude of every [`crate::AnnIndex::search`]
/// implementation.
pub fn check_query(dim: usize, query: &[f32], k: usize) -> Result<()> {
    if query.len() != dim {
        return Err(DbLshError::DimensionMismatch {
            expected: dim,
            got: query.len(),
        });
    }
    if !query.iter().all(|v| v.is_finite()) {
        return Err(DbLshError::NonFiniteCoordinate);
    }
    if k == 0 {
        return Err(DbLshError::invalid("k", "must be at least 1"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let cases: Vec<(DbLshError, &str)> = vec![
            (DbLshError::EmptyDataset, "no live points"),
            (
                DbLshError::DimensionMismatch {
                    expected: 8,
                    got: 5,
                },
                "index is 8-dimensional",
            ),
            (DbLshError::NonFiniteCoordinate, "non-finite"),
            (
                DbLshError::invalid("c", "must exceed 1"),
                "invalid parameter `c`",
            ),
            (DbLshError::CapacityExceeded { limit: 42 }, "at most 42"),
            (DbLshError::UnknownId { id: 7 }, "id 7"),
            (
                DbLshError::io("read", std::io::Error::other("disk on fire")),
                "snapshot read failed",
            ),
            (DbLshError::corrupt("bad checksum"), "bad checksum"),
            (DbLshError::Busy, "queue is full"),
            (DbLshError::Shutdown, "draining or shut down"),
            (DbLshError::DeadlineExceeded, "deadline expired"),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
        }
    }

    #[test]
    fn check_query_contract() {
        assert_eq!(check_query(3, &[1.0, 2.0, 3.0], 5), Ok(()));
        assert_eq!(
            check_query(3, &[1.0], 5),
            Err(DbLshError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        );
        assert_eq!(
            check_query(2, &[1.0, f32::NAN], 5),
            Err(DbLshError::NonFiniteCoordinate)
        );
        assert!(matches!(
            check_query(1, &[0.0], 0),
            Err(DbLshError::InvalidParameter { param: "k", .. })
        ));
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(DbLshError::EmptyDataset);
        assert!(!e.to_string().is_empty());
    }
}
