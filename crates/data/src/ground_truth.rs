//! Exact k-nearest-neighbor ground truth by parallel linear scan.

use crate::dataset::{sq_dist, Dataset};
use crate::Neighbor;

/// Exact k-NN of every query against `data`, parallelized over queries
/// with scoped threads. Returns, per query, the `k` nearest neighbors in
/// ascending distance order (fewer if the dataset is smaller than `k`).
pub fn exact_knn(data: &Dataset, queries: &Dataset, k: usize) -> Vec<Vec<Neighbor>> {
    assert_eq!(data.dim(), queries.dim(), "dimensionality mismatch");
    let nq = queries.len();
    if nq == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(nq);
    let mut results: Vec<Vec<Neighbor>> = vec![Vec::new(); nq];
    let chunk = nq.div_ceil(threads);
    std::thread::scope(|scope| {
        for (tid, out) in results.chunks_mut(chunk).enumerate() {
            let start = tid * chunk;
            scope.spawn(move || {
                for (offset, slot) in out.iter_mut().enumerate() {
                    *slot = exact_knn_single(data, queries.point(start + offset), k);
                }
            });
        }
    });
    results
}

/// Exact k-NN for a single query (single-threaded linear scan with a
/// bounded insertion buffer).
pub fn exact_knn_single(data: &Dataset, query: &[f32], k: usize) -> Vec<Neighbor> {
    assert_eq!(data.dim(), query.len(), "dimensionality mismatch");
    let k = k.min(data.len());
    if k == 0 {
        return Vec::new();
    }
    // Maintain the current top-k ascending by squared distance.
    let mut top: Vec<(f32, u32)> = Vec::with_capacity(k + 1);
    let mut worst = f32::INFINITY;
    for i in 0..data.len() {
        let d2 = sq_dist(query, data.point(i));
        if top.len() < k || d2 < worst {
            let pos = top.partition_point(|&(d, _)| d <= d2);
            top.insert(pos, (d2, i as u32));
            if top.len() > k {
                top.pop();
            }
            // `top` just received an insert, so `last` is always Some;
            // `map_or` keeps the scan free of panic tokens.
            worst = top.last().map_or(worst, |&(d, _)| d);
        }
    }
    top.into_iter()
        .map(|(d2, id)| Neighbor {
            id,
            dist: d2.sqrt(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{gaussian_mixture, MixtureConfig};

    fn small() -> Dataset {
        Dataset::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![5.0, 5.0],
            vec![-1.0, -1.0],
        ])
    }

    #[test]
    fn single_query_exact() {
        let d = small();
        let nn = exact_knn_single(&d, &[0.1, 0.1], 3);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].id, 0);
        assert_eq!(nn[1].id, 1);
        assert!((nn[0].dist - (0.02f32).sqrt()).abs() < 1e-6);
        assert!(nn.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn k_capped_by_dataset_size() {
        let d = small();
        assert_eq!(exact_knn_single(&d, &[0.0, 0.0], 50).len(), 5);
    }

    #[test]
    fn parallel_matches_single() {
        let cfg = MixtureConfig {
            n: 1500,
            dim: 12,
            clusters: 10,
            ..Default::default()
        };
        let d = gaussian_mixture(&cfg);
        let q = gaussian_mixture(&MixtureConfig {
            n: 37,
            seed: 1234,
            ..cfg
        });
        let par = exact_knn(&d, &q, 10);
        assert_eq!(par.len(), 37);
        for (i, got) in par.iter().enumerate() {
            let want = exact_knn_single(&d, q.point(i), 10);
            let gi: Vec<u32> = got.iter().map(|n| n.id).collect();
            let wi: Vec<u32> = want.iter().map(|n| n.id).collect();
            assert_eq!(gi, wi, "query {i}");
        }
    }

    #[test]
    fn empty_queries() {
        let d = small();
        assert!(exact_knn(&d, &Dataset::empty(2), 5).is_empty());
    }

    #[test]
    fn k_zero_gives_empty() {
        let d = small();
        assert!(exact_knn_single(&d, &[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn ties_are_stable_by_distance() {
        // two points at identical distance: both must appear before the
        // farther one
        let d = Dataset::from_rows(&[vec![1.0, 0.0], vec![-1.0, 0.0], vec![3.0, 0.0]]);
        let nn = exact_knn_single(&d, &[0.0, 0.0], 3);
        assert_eq!(nn[2].id, 2);
        assert_eq!(nn[0].dist, nn[1].dist);
    }
}
