//! Seeded synthetic dataset generators.
//!
//! The workhorse is [`gaussian_mixture`]: `n` points spread over planted
//! Gaussian clusters plus a fraction of uniform background noise. This is
//! the standard stand-in for real ANN corpora: nearest neighbors come from
//! the query's own cluster (low relative contrast inside, high outside),
//! which is the regime where LSH quality differences are visible.

use crate::dataset::Dataset;
use rand::prelude::*;
use rand::rngs::StdRng;
use rand_distr_normal::NormalSampler;

/// Minimal Box–Muller normal sampler so we only depend on `rand` itself.
mod rand_distr_normal {
    use rand::Rng;

    pub struct NormalSampler {
        spare: Option<f64>,
    }

    impl NormalSampler {
        pub fn new() -> Self {
            NormalSampler { spare: None }
        }

        /// Standard normal variate.
        pub fn sample<R: Rng>(&mut self, rng: &mut R) -> f64 {
            if let Some(v) = self.spare.take() {
                return v;
            }
            // Box–Muller; u1 in (0, 1] avoids ln(0).
            let u1: f64 = 1.0 - rng.gen::<f64>();
            let u2: f64 = rng.gen();
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f64::consts::PI * u2;
            self.spare = Some(r * theta.sin());
            r * theta.cos()
        }
    }
}

/// Configuration for [`gaussian_mixture`].
#[derive(Debug, Clone)]
pub struct MixtureConfig {
    /// Total number of points.
    pub n: usize,
    /// Dimensionality.
    pub dim: usize,
    /// Number of planted clusters.
    pub clusters: usize,
    /// Standard deviation of points around their cluster center.
    pub cluster_std: f64,
    /// Cluster centers are uniform in `[-spread, spread]^dim`.
    pub spread: f64,
    /// Fraction of points drawn uniformly from the bounding box instead of
    /// from a cluster (background noise).
    pub noise_frac: f64,
    /// RNG seed — identical seeds give identical datasets.
    pub seed: u64,
}

impl Default for MixtureConfig {
    fn default() -> Self {
        MixtureConfig {
            n: 10_000,
            dim: 32,
            clusters: 100,
            cluster_std: 1.0,
            spread: 50.0,
            noise_frac: 0.05,
            seed: 42,
        }
    }
}

/// Generate a clustered dataset per `cfg`. Deterministic in `cfg.seed`.
pub fn gaussian_mixture(cfg: &MixtureConfig) -> Dataset {
    assert!(cfg.dim >= 1 && cfg.clusters >= 1);
    assert!((0.0..=1.0).contains(&cfg.noise_frac), "noise_frac in [0,1]");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut normal = NormalSampler::new();

    let centers: Vec<f64> = (0..cfg.clusters * cfg.dim)
        .map(|_| rng.gen_range(-cfg.spread..=cfg.spread))
        .collect();

    let mut data = Vec::with_capacity(cfg.n * cfg.dim);
    for _ in 0..cfg.n {
        if rng.gen::<f64>() < cfg.noise_frac {
            for _ in 0..cfg.dim {
                data.push(rng.gen_range(-cfg.spread..=cfg.spread) as f32);
            }
        } else {
            let c = rng.gen_range(0..cfg.clusters);
            let center = &centers[c * cfg.dim..(c + 1) * cfg.dim];
            for &m in center {
                data.push((m + cfg.cluster_std * normal.sample(&mut rng)) as f32);
            }
        }
    }
    Dataset::from_flat(cfg.dim, data)
}

/// `n` points uniform in `[lo, hi]^dim`. Deterministic in `seed`.
pub fn uniform(n: usize, dim: usize, lo: f32, hi: f32, seed: u64) -> Dataset {
    assert!(lo < hi, "empty range");
    let mut rng = StdRng::seed_from_u64(seed);
    let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(lo..=hi)).collect();
    Dataset::from_flat(dim, data)
}

/// Carve `count` query points out of `data` uniformly at random (they are
/// removed from the dataset, as in the paper's protocol). Deterministic in
/// `seed`.
pub fn split_queries(data: &mut Dataset, count: usize, seed: u64) -> Dataset {
    assert!(
        count <= data.len(),
        "cannot extract more queries than points"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows: Vec<usize> = (0..data.len()).collect();
    rows.shuffle(&mut rng);
    let mut chosen: Vec<usize> = rows[..count].to_vec();
    chosen.sort_unstable();
    data.extract_rows(&chosen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::dist;

    #[test]
    fn mixture_is_deterministic() {
        let cfg = MixtureConfig {
            n: 500,
            dim: 8,
            ..Default::default()
        };
        let a = gaussian_mixture(&cfg);
        let b = gaussian_mixture(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        assert_eq!(a.dim(), 8);
    }

    #[test]
    fn different_seeds_differ() {
        let base = MixtureConfig {
            n: 100,
            dim: 4,
            ..Default::default()
        };
        let a = gaussian_mixture(&base);
        let b = gaussian_mixture(&MixtureConfig { seed: 43, ..base });
        assert_ne!(a, b);
    }

    #[test]
    fn clusters_create_near_neighbors() {
        // With tight clusters, a point's NN should be far closer than a
        // random pair — the relative-contrast structure LSH needs.
        let cfg = MixtureConfig {
            n: 2000,
            dim: 16,
            clusters: 20,
            cluster_std: 0.5,
            spread: 100.0,
            noise_frac: 0.0,
            seed: 7,
        };
        let d = gaussian_mixture(&cfg);
        let q = d.point(0);
        let mut nn = f32::INFINITY;
        let mut mean = 0.0f64;
        for i in 1..d.len() {
            let dd = dist(q, d.point(i));
            nn = nn.min(dd);
            mean += dd as f64;
        }
        mean /= (d.len() - 1) as f64;
        assert!(
            (nn as f64) < mean / 5.0,
            "no contrast: nn={nn}, mean={mean}"
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let d = uniform(300, 5, -2.0, 3.0, 11);
        assert_eq!(d.len(), 300);
        assert!(d.flat().iter().all(|&v| (-2.0..=3.0).contains(&v)));
    }

    #[test]
    fn split_queries_removes_rows() {
        let mut d = uniform(100, 3, 0.0, 1.0, 5);
        let before = d.len();
        let q = split_queries(&mut d, 10, 99);
        assert_eq!(q.len(), 10);
        assert_eq!(d.len(), before - 10);
        assert_eq!(q.dim(), 3);
    }

    #[test]
    fn split_queries_deterministic() {
        let mut d1 = uniform(100, 3, 0.0, 1.0, 5);
        let mut d2 = uniform(100, 3, 0.0, 1.0, 5);
        let q1 = split_queries(&mut d1, 10, 99);
        let q2 = split_queries(&mut d2, 10, 99);
        assert_eq!(q1, q2);
        assert_eq!(d1, d2);
    }

    #[test]
    #[should_panic(expected = "noise_frac")]
    fn bad_noise_frac_panics() {
        gaussian_mixture(&MixtureConfig {
            noise_frac: 1.5,
            ..Default::default()
        });
    }
}
