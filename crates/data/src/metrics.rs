//! The paper's quality metrics (Section VI-A, Eq. 11 and Eq. 12).

use crate::Neighbor;

/// Overall ratio (Eq. 11): `1/k * sum_i ||q, o_i|| / ||q, o*_i||` where
/// `o_i` is the i-th returned point and `o*_i` the true i-th NN. A perfect
/// answer scores 1.0; larger is worse.
///
/// Conventions for edge cases (shared by published LSH evaluation code):
/// * if the method returned fewer than `k = truth.len()` points, each
///   missing slot contributes the worst observed ratio of that query
///   (so empty results are penalized, not rewarded);
/// * a zero true distance with zero returned distance contributes 1.0;
/// * a zero true distance with a positive returned distance is skipped
///   (the ratio is unbounded and would drown the average).
pub fn overall_ratio(returned: &[Neighbor], truth: &[Neighbor]) -> f64 {
    assert!(!truth.is_empty(), "ground truth must not be empty");
    let k = truth.len();
    let mut acc = 0.0f64;
    let mut counted = 0usize;
    let mut worst = 1.0f64;
    for i in 0..returned.len().min(k) {
        let t = truth[i].dist as f64;
        let r = returned[i].dist as f64;
        let ratio = if t == 0.0 {
            if r == 0.0 {
                1.0
            } else {
                continue;
            }
        } else {
            r / t
        };
        worst = worst.max(ratio);
        acc += ratio;
        counted += 1;
    }
    if counted == 0 {
        return f64::INFINITY;
    }
    // penalize missing slots with the worst observed ratio
    acc += worst * (k - counted) as f64;
    acc / k as f64
}

/// Recall (Eq. 12): `|R ∩ R*| / k`. Ids are matched exactly; with
/// continuous synthetic data, distance ties are measure-zero so id
/// matching equals the distance-based variant.
pub fn recall(returned: &[Neighbor], truth: &[Neighbor]) -> f64 {
    assert!(!truth.is_empty(), "ground truth must not be empty");
    let truth_ids: std::collections::HashSet<u32> = truth.iter().map(|n| n.id).collect();
    let hit = returned
        .iter()
        .take(truth.len())
        .filter(|n| truth_ids.contains(&n.id))
        .count();
    hit as f64 / truth.len() as f64
}

/// Mean of a slice, NaN on empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        f64::NAN
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u32, dist: f32) -> Neighbor {
        Neighbor { id, dist }
    }

    #[test]
    fn perfect_answer_scores_one() {
        let truth = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0)];
        assert_eq!(overall_ratio(&truth, &truth), 1.0);
        assert_eq!(recall(&truth, &truth), 1.0);
    }

    #[test]
    fn ratio_averages_per_rank() {
        let truth = vec![n(1, 1.0), n(2, 2.0)];
        let got = vec![n(5, 1.5), n(6, 2.0)];
        // (1.5/1 + 2/2) / 2 = 1.25
        assert!((overall_ratio(&got, &truth) - 1.25).abs() < 1e-9);
        assert_eq!(recall(&got, &truth), 0.0);
    }

    #[test]
    fn partial_recall() {
        let truth = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0), n(4, 4.0)];
        let got = vec![n(1, 1.0), n(9, 2.5), n(4, 4.0)];
        assert_eq!(recall(&got, &truth), 0.5);
    }

    #[test]
    fn missing_results_are_penalized() {
        let truth = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0)];
        let got = vec![n(1, 2.0)]; // ratio 2.0, two missing slots
                                   // (2 + 2 + 2) / 3 = 2
        assert!((overall_ratio(&got, &truth) - 2.0).abs() < 1e-9);
        let empty: Vec<Neighbor> = Vec::new();
        assert!(overall_ratio(&empty, &truth).is_infinite());
    }

    #[test]
    fn zero_distance_handling() {
        let truth = vec![n(1, 0.0), n(2, 1.0)];
        let exact = vec![n(1, 0.0), n(2, 1.0)];
        assert_eq!(overall_ratio(&exact, &truth), 1.0);
        // zero truth with positive returned: slot is skipped, not infinite
        let off = vec![n(9, 0.5), n(2, 1.0)];
        let v = overall_ratio(&off, &truth);
        assert!(v.is_finite());
    }

    #[test]
    fn extra_results_beyond_k_ignored() {
        let truth = vec![n(1, 1.0)];
        let got = vec![n(1, 1.0), n(2, 1.0), n(3, 1.0)];
        assert_eq!(recall(&got, &truth), 1.0);
        assert_eq!(overall_ratio(&got, &truth), 1.0);
    }

    #[test]
    fn mean_edge_cases() {
        assert!(mean(&[]).is_nan());
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
