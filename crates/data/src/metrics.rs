//! The paper's quality metrics (Section VI-A, Eq. 11 and Eq. 12).

use crate::Neighbor;

/// Overall ratio (Eq. 11): `1/k * sum_i ||q, o_i|| / ||q, o*_i||` where
/// `o_i` is the i-th returned point and `o*_i` the true i-th NN. A perfect
/// answer scores 1.0; larger is worse.
///
/// Conventions for edge cases (shared by published LSH evaluation code):
/// * a *missing* slot — rank `i >= returned.len()`, i.e. the method
///   returned fewer than `k = truth.len()` points — contributes the
///   worst observed ratio of that query (so short results are
///   penalized, not rewarded);
/// * a zero true distance with zero returned distance contributes 1.0;
/// * a zero true distance with a positive returned distance is *skipped*
///   (the ratio is unbounded and would drown the average): it is
///   excluded from both the numerator and the denominator, and — unlike
///   a missing slot — carries no penalty;
/// * if no slot could be scored at all (empty `returned`, or every true
///   distance zero against positive returned distances), the ratio is
///   `+inf` — there is no observed ratio to penalize with, and an
///   unscorable answer must not look perfect.
pub fn overall_ratio(returned: &[Neighbor], truth: &[Neighbor]) -> f64 {
    assert!(!truth.is_empty(), "ground truth must not be empty");
    let k = truth.len();
    let mut acc = 0.0f64;
    let mut counted = 0usize;
    let mut worst = 1.0f64;
    for i in 0..returned.len().min(k) {
        let t = truth[i].dist as f64;
        let r = returned[i].dist as f64;
        let ratio = if t == 0.0 {
            if r == 0.0 {
                1.0
            } else {
                continue; // skipped: neither scored nor penalized
            }
        } else {
            r / t
        };
        worst = worst.max(ratio);
        acc += ratio;
        counted += 1;
    }
    if counted == 0 {
        return f64::INFINITY;
    }
    // Penalize only the slots the method failed to fill — skipped
    // (zero-truth) slots are not missing slots and take no penalty.
    let missing = k - returned.len().min(k);
    acc += worst * missing as f64;
    acc / (counted + missing) as f64
}

/// Recall (Eq. 12): `|R ∩ R*| / k`. Ids are matched exactly; with
/// continuous synthetic data, distance ties are measure-zero so id
/// matching equals the distance-based variant.
///
/// Edge conventions: only the first `k = truth.len()` returned points
/// are considered (extras neither help nor hurt); a short or empty
/// `returned` simply scores its hits over `k`, so an empty answer is
/// 0.0, never a division by its own length.
pub fn recall(returned: &[Neighbor], truth: &[Neighbor]) -> f64 {
    assert!(!truth.is_empty(), "ground truth must not be empty");
    let truth_ids: std::collections::HashSet<u32> = truth.iter().map(|n| n.id).collect();
    let hit = returned
        .iter()
        .take(truth.len())
        .filter(|n| truth_ids.contains(&n.id))
        .count();
    hit as f64 / truth.len() as f64
}

/// Mean of a slice, NaN on empty input.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        f64::NAN
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: u32, dist: f32) -> Neighbor {
        Neighbor { id, dist }
    }

    #[test]
    fn perfect_answer_scores_one() {
        let truth = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0)];
        assert_eq!(overall_ratio(&truth, &truth), 1.0);
        assert_eq!(recall(&truth, &truth), 1.0);
    }

    #[test]
    fn ratio_averages_per_rank() {
        let truth = vec![n(1, 1.0), n(2, 2.0)];
        let got = vec![n(5, 1.5), n(6, 2.0)];
        // (1.5/1 + 2/2) / 2 = 1.25
        assert!((overall_ratio(&got, &truth) - 1.25).abs() < 1e-9);
        assert_eq!(recall(&got, &truth), 0.0);
    }

    #[test]
    fn partial_recall() {
        let truth = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0), n(4, 4.0)];
        let got = vec![n(1, 1.0), n(9, 2.5), n(4, 4.0)];
        assert_eq!(recall(&got, &truth), 0.5);
    }

    #[test]
    fn missing_results_are_penalized() {
        let truth = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0)];
        let got = vec![n(1, 2.0)]; // ratio 2.0, two missing slots
                                   // (2 + 2 + 2) / 3 = 2
        assert!((overall_ratio(&got, &truth) - 2.0).abs() < 1e-9);
        let empty: Vec<Neighbor> = Vec::new();
        assert!(overall_ratio(&empty, &truth).is_infinite());
    }

    #[test]
    fn zero_distance_handling() {
        let truth = vec![n(1, 0.0), n(2, 1.0)];
        let exact = vec![n(1, 0.0), n(2, 1.0)];
        assert_eq!(overall_ratio(&exact, &truth), 1.0);
        // zero truth with positive returned: slot is skipped, not infinite
        let off = vec![n(9, 0.5), n(2, 1.0)];
        let v = overall_ratio(&off, &truth);
        assert!(v.is_finite());
    }

    #[test]
    fn extra_results_beyond_k_ignored() {
        let truth = vec![n(1, 1.0)];
        let got = vec![n(1, 1.0), n(2, 1.0), n(3, 1.0)];
        assert_eq!(recall(&got, &truth), 1.0);
        assert_eq!(overall_ratio(&got, &truth), 1.0);
    }

    #[test]
    fn mean_edge_cases() {
        assert!(mean(&[]).is_nan());
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn skipped_zero_truth_slots_take_no_penalty() {
        // slot 0 is skipped (zero truth, positive returned); the other
        // two slots score 2.0 and 1.0. The documented convention is the
        // mean over the *scored* slots — 1.5 — not a penalized average
        // that treats the skipped slot as missing (which would give
        // (3 + 2) / 3 ≈ 1.667).
        let truth = vec![n(1, 0.0), n(2, 1.0), n(3, 1.0)];
        let got = vec![n(9, 0.5), n(8, 2.0), n(7, 1.0)];
        assert!((overall_ratio(&got, &truth) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn missing_and_skipped_slots_are_distinct() {
        // slot 0 skipped, slot 1 scores 3.0, slot 2 missing (short
        // answer): the missing slot is penalized with the worst observed
        // ratio, the skipped one is not -> (3 + 3) / 2 = 3.0.
        let truth = vec![n(1, 0.0), n(2, 1.0), n(3, 1.0)];
        let got = vec![n(9, 0.5), n(8, 3.0)];
        assert!((overall_ratio(&got, &truth) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn unscorable_answers_are_infinite_not_perfect() {
        // every true distance zero, every returned distance positive:
        // no slot can be scored, and the answer must not score 1.0
        let truth = vec![n(1, 0.0), n(2, 0.0)];
        let got = vec![n(9, 0.5), n(8, 0.5)];
        assert!(overall_ratio(&got, &truth).is_infinite());
        // all-zero truth answered exactly is perfect
        let exact = vec![n(1, 0.0), n(2, 0.0)];
        assert_eq!(overall_ratio(&exact, &truth), 1.0);
    }

    #[test]
    fn empty_returned_conventions() {
        let truth = vec![n(1, 1.0), n(2, 2.0)];
        let empty: Vec<Neighbor> = Vec::new();
        assert!(overall_ratio(&empty, &truth).is_infinite());
        assert_eq!(recall(&empty, &truth), 0.0);
    }

    #[test]
    fn short_returned_recall_counts_hits_over_k() {
        let truth = vec![n(1, 1.0), n(2, 2.0), n(3, 3.0), n(4, 4.0)];
        let got = vec![n(2, 2.0)]; // one hit of four
        assert_eq!(recall(&got, &truth), 0.25);
    }
}
