//! fvecs / ivecs readers and writers (the TEXMEX corpus format used by
//! SIFT/GIST and by the paper's datasets), plus the versioned binary
//! snapshot container every persistent index in this workspace writes
//! ([`SnapshotWriter`] / [`SnapshotReader`]).
//!
//! Layout per vector: a little-endian `i32` dimension header followed by
//! `dim` little-endian payload values (`f32` for fvecs, `i32` for ivecs).
//!
//! # Snapshot container format
//!
//! A snapshot is a tagged, checksummed section file:
//!
//! ```text
//! magic    8 bytes  "DBLSHSNP"
//! version  u32 LE   container format version (currently 1)
//! kind     4 bytes  what the sections describe (e.g. "INDX" for a
//!                   DbLsh index, "SHRD" for a sharded-fleet manifest)
//! count    u32 LE   number of sections
//! table    count x { tag: 4 bytes, len: u64 LE, crc32: u32 LE }
//! hdrcrc   u32 LE   CRC-32 over everything above (magic..table)
//! payload  the section bodies, back to back, in table order
//! ```
//!
//! Every primitive is little-endian. Readers are strict in the same way
//! the fvecs dimension-header reader is: a stream that ends inside the
//! header, the table, or a section body, a checksum mismatch, an
//! unsupported version, a wrong `kind`, or trailing bytes after the last
//! section all yield a typed [`DbLshError`] ([`DbLshError::CorruptSnapshot`]
//! / [`DbLshError::Io`]) — never a panic and never a silently truncated
//! index. Unknown *section tags* are preserved and ignored, which is the
//! forward-compatibility escape hatch: a newer writer may add sections
//! that an older reader skips.

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::sync::OnceLock;

use crate::dataset::Dataset;
use crate::error::DbLshError;

/// Read the next `i32` dimension header, distinguishing a clean end of
/// stream (`Ok(None)`) from a header truncated mid-way (`InvalidData`).
fn read_dim_header<R: Read>(r: &mut R) -> io::Result<Option<i32>> {
    let mut header = [0u8; 4];
    match r.read_exact(&mut header[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    match r.read_exact(&mut header[1..]) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "stream ends inside a vector dimension header",
            ));
        }
        Err(e) => return Err(e),
    }
    Ok(Some(i32::from_le_bytes(header)))
}

/// Read an entire fvecs stream into a [`Dataset`].
pub fn read_fvecs<R: Read>(reader: R) -> io::Result<Dataset> {
    let mut r = BufReader::new(reader);
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut buf: Vec<u8> = Vec::new(); // one payload buffer for the whole stream
    while let Some(d) = read_dim_header(&mut r)? {
        if d <= 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("non-positive vector dimension {d}"),
            ));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("inconsistent dimensions: {existing} then {d}"),
                ));
            }
            _ => {}
        }
        buf.resize(d * 4, 0);
        r.read_exact(&mut buf)?;
        data.extend(
            buf.chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
    }
    let dim = dim.unwrap_or(1);
    if data.iter().any(|v| !v.is_finite()) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "non-finite value in fvecs stream",
        ));
    }
    Ok(Dataset::from_flat(dim, data))
}

/// Write a [`Dataset`] as fvecs.
pub fn write_fvecs<W: Write>(writer: W, data: &Dataset) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let dim = data.dim() as i32;
    for i in 0..data.len() {
        w.write_all(&dim.to_le_bytes())?;
        for &v in data.point(i) {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read an ivecs stream (e.g. ground-truth neighbor id lists).
pub fn read_ivecs<R: Read>(reader: R) -> io::Result<Vec<Vec<i32>>> {
    let mut r = BufReader::new(reader);
    let mut out = Vec::new();
    let mut buf: Vec<u8> = Vec::new(); // one payload buffer for the whole stream
    while let Some(d) = read_dim_header(&mut r)? {
        if d < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("negative vector dimension {d}"),
            ));
        }
        buf.resize(d as usize * 4, 0);
        r.read_exact(&mut buf)?;
        out.push(
            buf.chunks_exact(4)
                .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect(),
        );
    }
    Ok(out)
}

/// Write id lists as ivecs.
pub fn write_ivecs<W: Write>(writer: W, rows: &[Vec<i32>]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for row in rows {
        w.write_all(&(row.len() as i32).to_le_bytes())?;
        for &v in row {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read a bvecs stream (`u8` payload — SIFT100M's native format) into a
/// [`Dataset`], widening each byte to `f32`.
///
/// Layout per vector: a little-endian `i32` dimension header followed by
/// `dim` raw `u8` values. Byte datasets are consumed as floats by every
/// algorithm in this workspace, so the reader widens on ingest; use
/// [`write_bvecs`] to go back (it validates that every coordinate is an
/// integer in `0..=255`).
pub fn read_bvecs<R: Read>(reader: R) -> io::Result<Dataset> {
    let mut r = BufReader::new(reader);
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut buf: Vec<u8> = Vec::new(); // one payload buffer for the whole stream
    while let Some(d) = read_dim_header(&mut r)? {
        if d <= 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("non-positive vector dimension {d}"),
            ));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("inconsistent dimensions: {existing} then {d}"),
                ));
            }
            _ => {}
        }
        buf.resize(d, 0);
        r.read_exact(&mut buf)?;
        data.extend(buf.iter().map(|&b| b as f32));
    }
    Ok(Dataset::from_flat(dim.unwrap_or(1), data))
}

/// Write a [`Dataset`] as bvecs (`u8` payload). Fails with
/// [`io::ErrorKind::InvalidData`] if any coordinate is not an integer in
/// `0..=255` — bvecs cannot represent it.
pub fn write_bvecs<W: Write>(writer: W, data: &Dataset) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let dim = data.dim() as i32;
    for i in 0..data.len() {
        w.write_all(&dim.to_le_bytes())?;
        for &v in data.point(i) {
            if !(0.0..=255.0).contains(&v) || v.fract() != 0.0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("coordinate {v} is not representable as u8"),
                ));
            }
            w.write_all(&[v as u8])?;
        }
    }
    w.flush()
}

/// Magic bytes opening every snapshot stream.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"DBLSHSNP";

/// Current snapshot container format version. Bumped only on layout
/// changes a [`SnapshotReader`] of this version cannot parse; new
/// *sections* do not bump it (unknown tags are ignored on read).
pub const SNAPSHOT_VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, the zlib polynomial) over `bytes` — the one
/// checksum every framed byte stream in this workspace uses (snapshot
/// sections here, wire-protocol frames in `dblsh-net`).
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Write one length-prefixed frame: a little-endian `u32` byte count
/// followed by `body`. Refuses (typed, [`DbLshError::InvalidParameter`])
/// to emit a frame larger than `max_len` — the writer-side twin of the
/// bound [`read_len_frame`] enforces before trusting a peer's prefix.
pub fn write_len_frame<W: Write>(w: &mut W, body: &[u8], max_len: u32) -> Result<(), DbLshError> {
    let len = u32::try_from(body.len())
        .ok()
        .filter(|&l| l <= max_len)
        .ok_or_else(|| {
            DbLshError::invalid(
                "frame",
                format!(
                    "frame body of {} bytes exceeds the {max_len}-byte cap",
                    body.len()
                ),
            )
        })?;
    w.write_all(&len.to_le_bytes())
        .and_then(|()| w.write_all(body))
        .map_err(|e| DbLshError::io("write", e))
}

/// Read one length-prefixed frame written by [`write_len_frame`].
/// Returns `Ok(None)` on a clean end of stream at a frame boundary.
///
/// The length prefix is validated against `max_len` **before any
/// allocation**, so a malicious or bit-flipped prefix cannot trigger an
/// absurd up-front allocation; within the cap the body is read
/// incrementally (`take` + `read_to_end`), so a lying prefix over a
/// short stream fails with a typed truncation error rather than
/// over-reserving.
pub fn read_len_frame<R: Read>(r: &mut R, max_len: u32) -> Result<Option<Vec<u8>>, DbLshError> {
    let mut prefix = [0u8; 4];
    match r.read_exact(&mut prefix[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(DbLshError::io("read", e)),
    }
    r.read_exact(&mut prefix[1..]).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            DbLshError::corrupt("stream ends inside a frame length prefix")
        } else {
            DbLshError::io("read", e)
        }
    })?;
    let len = u32::from_le_bytes(prefix);
    if len > max_len {
        return Err(DbLshError::corrupt(format!(
            "frame length {len} exceeds the {max_len}-byte cap"
        )));
    }
    let mut body = Vec::new();
    r.take(len as u64)
        .read_to_end(&mut body)
        .map_err(|e| DbLshError::io("read", e))?;
    if body.len() as u64 != len as u64 {
        return Err(DbLshError::corrupt(format!(
            "stream ends inside a frame ({} of {len} bytes)",
            body.len()
        )));
    }
    Ok(Some(body))
}

/// An in-progress snapshot section: a growable little-endian byte buffer
/// with typed appenders. Handed to [`SnapshotWriter::section`] once
/// filled.
#[derive(Debug, Default)]
pub struct SectionBuf {
    bytes: Vec<u8>,
}

impl SectionBuf {
    /// Empty buffer.
    pub fn new() -> Self {
        SectionBuf::default()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian IEEE-754 `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian IEEE-754 `f32` (bit-exact).
    pub fn put_f32(&mut self, v: f32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes (the caller's schema carries the length).
    pub fn put_bytes(&mut self, vs: &[u8]) {
        self.bytes.extend_from_slice(vs);
    }

    /// Append a `u32` slice (values only — lengths are the caller's
    /// schema, carried in its own fields).
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.bytes.reserve(vs.len() * 4);
        for &v in vs {
            self.bytes.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append a `u64` slice.
    pub fn put_u64_slice(&mut self, vs: &[u64]) {
        self.bytes.reserve(vs.len() * 8);
        for &v in vs {
            self.bytes.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Append an `f32` slice (bit-exact round trip through
    /// [`SectionCursor::get_f32_vec`]).
    pub fn put_f32_slice(&mut self, vs: &[f32]) {
        self.bytes.reserve(vs.len() * 4);
        for &v in vs {
            self.bytes.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The accumulated bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consume the buffer into its byte vector.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// Writer half of the snapshot container (see the module docs for the
/// format): collect tagged sections, then [`SnapshotWriter::write_to`]
/// emits header, checksummed section table and payloads in one pass.
#[derive(Debug)]
pub struct SnapshotWriter {
    kind: [u8; 4],
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl SnapshotWriter {
    /// A writer for a snapshot of the given `kind` (4-byte type tag,
    /// e.g. `*b"INDX"`).
    pub fn new(kind: [u8; 4]) -> Self {
        SnapshotWriter {
            kind,
            sections: Vec::new(),
        }
    }

    /// Append one section. Tags should be unique per snapshot;
    /// [`SnapshotReader::section`] resolves the first match.
    pub fn section(&mut self, tag: [u8; 4], buf: SectionBuf) {
        self.sections.push((tag, buf.bytes));
    }

    /// Emit the whole snapshot. I/O failures surface as
    /// [`DbLshError::Io`].
    pub fn write_to<W: Write>(&self, writer: W) -> Result<(), DbLshError> {
        let mut header = Vec::with_capacity(24 + self.sections.len() * 16);
        header.extend_from_slice(&SNAPSHOT_MAGIC);
        header.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        header.extend_from_slice(&self.kind);
        header.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());
        for (tag, body) in &self.sections {
            header.extend_from_slice(tag);
            header.extend_from_slice(&(body.len() as u64).to_le_bytes());
            header.extend_from_slice(&crc32(body).to_le_bytes());
        }
        let hdr_crc = crc32(&header);
        let mut w = BufWriter::new(writer);
        let put = |w: &mut BufWriter<W>, bytes: &[u8]| {
            w.write_all(bytes).map_err(|e| DbLshError::io("write", e))
        };
        put(&mut w, &header)?;
        put(&mut w, &hdr_crc.to_le_bytes())?;
        for (_, body) in &self.sections {
            put(&mut w, body)?;
        }
        w.flush().map_err(|e| DbLshError::io("flush", e))
    }

    /// [`SnapshotWriter::write_to`] a file path, crash-safely: the
    /// bytes go to a `.tmp` sibling first and are renamed over `path`
    /// only once fully written, so a crash or full disk mid-save leaves
    /// any previous snapshot at `path` intact (see
    /// [`atomic_write_file`]).
    pub fn write_file<P: AsRef<Path>>(&self, path: P) -> Result<(), DbLshError> {
        atomic_write_file(path.as_ref(), |f| self.write_to(f))
    }
}

/// Write a file crash-safely *and durably*: `fill` writes into
/// `<path>.tmp`, the file is fsynced, and only then is it renamed over
/// `path`, so an interrupted or failed write never destroys an existing
/// file at `path` — the property a re-snapshot loop depends on (the
/// previous restart image must survive a crash mid-save). After the
/// rename the parent directory is fsynced too, so a power loss right
/// after a "successful" save cannot roll the rename back and leave a
/// directory entry pointing at unflushed bytes. On any error the
/// temporary is removed.
pub fn atomic_write_file(
    path: &Path,
    fill: impl FnOnce(&mut std::fs::File) -> Result<(), DbLshError>,
) -> Result<(), DbLshError> {
    let mut tmp_name = path
        .file_name()
        .ok_or_else(|| DbLshError::io("create", io::Error::other("path has no file name")))?
        .to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    let written = (|| {
        let mut file = std::fs::File::create(&tmp).map_err(|e| DbLshError::io("create", e))?;
        fill(&mut file)?;
        // Data must be on stable storage *before* the rename publishes
        // it — rename-then-fsync can surface a committed name bound to
        // garbage after a crash.
        file.sync_all().map_err(|e| DbLshError::io("fsync", e))?;
        drop(file);
        std::fs::rename(&tmp, path).map_err(|e| DbLshError::io("rename", e))?;
        sync_parent_dir(path)
    })();
    if written.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    written
}

/// fsync the directory holding `path`, making a just-completed rename
/// or create of `path` itself durable (file fsync alone does not cover
/// the directory entry). A relative path with no parent component
/// syncs the current directory.
pub fn sync_parent_dir(path: &Path) -> Result<(), DbLshError> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let dir = std::fs::File::open(parent).map_err(|e| DbLshError::io("open", e))?;
    dir.sync_all().map_err(|e| DbLshError::io("fsync", e))
}

/// Reader half of the snapshot container: parses and checksum-verifies
/// the whole stream up front, then hands out per-section cursors.
#[derive(Debug)]
pub struct SnapshotReader {
    version: u32,
    sections: Vec<([u8; 4], Vec<u8>)>,
}

impl SnapshotReader {
    /// Parse a snapshot stream of the expected `kind`. Verifies magic,
    /// version, kind, section-table framing, every section checksum, and
    /// that the stream ends exactly after the last payload; any
    /// violation is a typed [`DbLshError`], never a panic.
    pub fn read_from<R: Read>(reader: R, kind: [u8; 4]) -> Result<Self, DbLshError> {
        let mut r = BufReader::new(reader);
        let mut header = Vec::new();
        let mut read_exact =
            |header: &mut Vec<u8>, buf: &mut [u8], what: &str| -> Result<(), DbLshError> {
                r.read_exact(buf).map_err(|e| {
                    if e.kind() == io::ErrorKind::UnexpectedEof {
                        DbLshError::corrupt(format!("stream ends inside {what}"))
                    } else {
                        DbLshError::io("read", e)
                    }
                })?;
                header.extend_from_slice(buf);
                Ok(())
            };
        let mut magic = [0u8; 8];
        read_exact(&mut header, &mut magic, "the magic header")?;
        if magic != SNAPSHOT_MAGIC {
            return Err(DbLshError::corrupt("not a DB-LSH snapshot (bad magic)"));
        }
        let mut word = [0u8; 4];
        read_exact(&mut header, &mut word, "the version field")?;
        let version = u32::from_le_bytes(word);
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(DbLshError::corrupt(format!(
                "unsupported snapshot version {version} (this build reads up to {SNAPSHOT_VERSION})"
            )));
        }
        let mut found_kind = [0u8; 4];
        read_exact(&mut header, &mut found_kind, "the kind field")?;
        if found_kind != kind {
            return Err(DbLshError::corrupt(format!(
                "snapshot kind mismatch: expected {:?}, found {:?}",
                String::from_utf8_lossy(&kind),
                String::from_utf8_lossy(&found_kind),
            )));
        }
        read_exact(&mut header, &mut word, "the section count")?;
        let count = u32::from_le_bytes(word) as usize;
        // Sanity bound: the table alone would need 16 bytes per entry.
        if count > 1 << 16 {
            return Err(DbLshError::corrupt(format!(
                "implausible section count {count}"
            )));
        }
        let mut table: Vec<([u8; 4], u64, u32)> = Vec::with_capacity(count);
        for i in 0..count {
            let mut tag = [0u8; 4];
            read_exact(&mut header, &mut tag, "the section table")?;
            let mut len8 = [0u8; 8];
            read_exact(&mut header, &mut len8, "the section table")?;
            read_exact(&mut header, &mut word, "the section table")?;
            let len = u64::from_le_bytes(len8);
            usize::try_from(len).map_err(|_| {
                DbLshError::corrupt(format!("section {i} length {len} does not fit in memory"))
            })?;
            table.push((tag, len, u32::from_le_bytes(word)));
        }
        let mut crc_word = [0u8; 4];
        let mut ignore = Vec::new();
        read_exact(&mut ignore, &mut crc_word, "the header checksum")?;
        if u32::from_le_bytes(crc_word) != crc32(&header) {
            return Err(DbLshError::corrupt(
                "header checksum mismatch (magic, kind, or section table corrupted)",
            ));
        }
        let mut sections = Vec::with_capacity(count);
        for (tag, len, crc) in table {
            // `take` + `read_to_end` grows incrementally, so a
            // bit-flipped length cannot trigger an absurd up-front
            // allocation — it fails the length check below instead.
            let mut body = Vec::new();
            r.by_ref()
                .take(len)
                .read_to_end(&mut body)
                .map_err(|e| DbLshError::io("read", e))?;
            if body.len() as u64 != len {
                return Err(DbLshError::corrupt(format!(
                    "stream ends inside section {:?} ({} of {len} bytes)",
                    String::from_utf8_lossy(&tag),
                    body.len(),
                )));
            }
            if crc32(&body) != crc {
                return Err(DbLshError::corrupt(format!(
                    "checksum mismatch in section {:?}",
                    String::from_utf8_lossy(&tag)
                )));
            }
            sections.push((tag, body));
        }
        let mut one = [0u8; 1];
        match r.read_exact(&mut one) {
            Ok(()) => Err(DbLshError::corrupt("trailing bytes after the last section")),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                Ok(SnapshotReader { version, sections })
            }
            Err(e) => Err(DbLshError::io("read", e)),
        }
    }

    /// [`SnapshotReader::read_from`] a file path.
    pub fn read_file<P: AsRef<Path>>(path: P, kind: [u8; 4]) -> Result<Self, DbLshError> {
        let f = std::fs::File::open(path).map_err(|e| DbLshError::io("open", e))?;
        SnapshotReader::read_from(f, kind)
    }

    /// The container version the stream was written with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Cursor over the body of the section tagged `tag`; a missing
    /// required section is a [`DbLshError::CorruptSnapshot`].
    pub fn section(&self, tag: [u8; 4]) -> Result<SectionCursor<'_>, DbLshError> {
        self.sections
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, body)| SectionCursor {
                tag,
                bytes: body,
                pos: 0,
            })
            .ok_or_else(|| {
                DbLshError::corrupt(format!(
                    "missing required section {:?}",
                    String::from_utf8_lossy(&tag)
                ))
            })
    }

    /// Whether a section with this tag is present (for optional
    /// sections).
    pub fn has_section(&self, tag: [u8; 4]) -> bool {
        self.sections.iter().any(|(t, _)| *t == tag)
    }
}

/// Copy an exactly-`N`-byte slice (a `chunks_exact(N)` chunk) into a
/// fixed array. `copy_from_slice` enforces the length; the callers'
/// chunk iterators guarantee it.
fn fixed<const N: usize>(b: &[u8]) -> [u8; N] {
    let mut a = [0u8; N];
    a.copy_from_slice(b);
    a
}

/// Typed, bounds-checked reads over one section body. Over-reads report
/// [`DbLshError::CorruptSnapshot`] naming the section;
/// [`SectionCursor::finish`] asserts the body was consumed exactly.
#[derive(Debug)]
pub struct SectionCursor<'a> {
    tag: [u8; 4],
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> SectionCursor<'a> {
    /// A cursor over a free-standing byte buffer, outside any snapshot
    /// container — the same typed, bounds-checked reads (and the same
    /// typed errors) applied to e.g. a wire-protocol payload. `tag`
    /// names the buffer in error messages.
    pub fn over(tag: [u8; 4], bytes: &'a [u8]) -> Self {
        SectionCursor { tag, bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }
}

impl SectionCursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], DbLshError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let out = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(DbLshError::corrupt(format!(
                "section {:?} is truncated (need {n} more bytes at offset {})",
                String::from_utf8_lossy(&self.tag),
                self.pos,
            ))),
        }
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Result<u8, DbLshError> {
        Ok(self.take(1)?[0])
    }

    /// Take exactly `N` bytes as a fixed-width array. `take` already
    /// errors on short sections, so the conversion itself cannot fail;
    /// the error arm keeps the decode path free of panic tokens.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N], DbLshError> {
        self.take(N)?
            .try_into()
            .map_err(|_| DbLshError::corrupt("short fixed-width field"))
    }

    /// Read a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, DbLshError> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Read `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&[u8], DbLshError> {
        self.take(n)
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DbLshError> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DbLshError> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian `u64` and convert it to `usize`.
    pub fn get_len(&mut self) -> Result<usize, DbLshError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| DbLshError::corrupt(format!("length {v} does not fit in memory")))
    }

    /// Read a little-endian IEEE-754 `f64`.
    pub fn get_f64(&mut self) -> Result<f64, DbLshError> {
        Ok(f64::from_le_bytes(self.take_array()?))
    }

    /// Read a little-endian IEEE-754 `f32` (bit-exact).
    pub fn get_f32(&mut self) -> Result<f32, DbLshError> {
        Ok(f32::from_le_bytes(self.take_array()?))
    }

    /// Read `n` little-endian `u32` values.
    pub fn get_u32_vec(&mut self, n: usize) -> Result<Vec<u32>, DbLshError> {
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or_else(|| DbLshError::corrupt(format!("u32 slice length {n} overflows")))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| u32::from_le_bytes(fixed(b)))
            .collect())
    }

    /// Read `n` little-endian `u64` values.
    pub fn get_u64_vec(&mut self, n: usize) -> Result<Vec<u64>, DbLshError> {
        let bytes = self.take(
            n.checked_mul(8)
                .ok_or_else(|| DbLshError::corrupt(format!("u64 slice length {n} overflows")))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|b| u64::from_le_bytes(fixed(b)))
            .collect())
    }

    /// Read `n` little-endian `f32` values (bit-exact).
    pub fn get_f32_vec(&mut self, n: usize) -> Result<Vec<f32>, DbLshError> {
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or_else(|| DbLshError::corrupt(format!("f32 slice length {n} overflows")))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(fixed(b)))
            .collect())
    }

    /// Assert every byte of the section was consumed — unread bytes mean
    /// reader and writer disagree on the schema.
    pub fn finish(self) -> Result<(), DbLshError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DbLshError::corrupt(format!(
                "section {:?} holds {} unread bytes",
                String::from_utf8_lossy(&self.tag),
                self.bytes.len() - self.pos,
            )))
        }
    }
}

/// Convenience: load an fvecs file from disk.
pub fn load_fvecs_file<P: AsRef<Path>>(path: P) -> io::Result<Dataset> {
    read_fvecs(std::fs::File::open(path)?)
}

/// Convenience: load a bvecs file from disk.
pub fn load_bvecs_file<P: AsRef<Path>>(path: P) -> io::Result<Dataset> {
    read_bvecs(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fvecs_roundtrip() {
        let d = Dataset::from_rows(&[vec![1.0, 2.5, -3.0], vec![0.0, 9.0, 1e-5]]);
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &d).unwrap();
        assert_eq!(buf.len(), 2 * (4 + 3 * 4));
        let back = read_fvecs(&buf[..]).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn ivecs_roundtrip() {
        let rows = vec![vec![1, 2, 3], vec![], vec![-7]];
        let mut buf = Vec::new();
        write_ivecs(&mut buf, &rows).unwrap();
        let back = read_ivecs(&buf[..]).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn empty_stream_is_empty_dataset() {
        let d = read_fvecs(&[][..]).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn inconsistent_dims_rejected() {
        let mut buf = Vec::new();
        buf.extend(2i32.to_le_bytes());
        buf.extend(1.0f32.to_le_bytes());
        buf.extend(2.0f32.to_le_bytes());
        buf.extend(3i32.to_le_bytes());
        buf.extend([0u8; 12]);
        assert!(read_fvecs(&buf[..]).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut buf = Vec::new();
        buf.extend(4i32.to_le_bytes());
        buf.extend(1.0f32.to_le_bytes()); // only 1 of 4 values
        assert!(read_fvecs(&buf[..]).is_err());
    }

    #[test]
    fn negative_dim_rejected() {
        let buf = (-3i32).to_le_bytes();
        assert!(read_fvecs(&buf[..]).is_err());
    }

    #[test]
    fn bvecs_roundtrip() {
        let d = Dataset::from_rows(&[vec![0.0, 128.0, 255.0], vec![1.0, 2.0, 3.0]]);
        let mut buf = Vec::new();
        write_bvecs(&mut buf, &d).unwrap();
        assert_eq!(buf.len(), 2 * (4 + 3)); // i32 header + dim bytes per row
        let back = read_bvecs(&buf[..]).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn bvecs_empty_stream_is_empty_dataset() {
        let d = read_bvecs(&[][..]).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn bvecs_malformed_headers_rejected() {
        // negative dimension
        assert!(read_bvecs(&(-2i32).to_le_bytes()[..]).is_err());
        // zero dimension
        assert!(read_bvecs(&0i32.to_le_bytes()[..]).is_err());
        // truncated header (2 of 4 bytes)
        assert!(read_bvecs(&[3u8, 0][..]).is_err());
        // truncated payload: dim 4, only 2 bytes
        let mut buf = Vec::new();
        buf.extend(4i32.to_le_bytes());
        buf.extend([7u8, 9]);
        assert!(read_bvecs(&buf[..]).is_err());
        // inconsistent dims across vectors
        let mut buf = Vec::new();
        buf.extend(2i32.to_le_bytes());
        buf.extend([1u8, 2]);
        buf.extend(3i32.to_le_bytes());
        buf.extend([3u8, 4, 5]);
        assert!(read_bvecs(&buf[..]).is_err());
    }

    fn sample_snapshot() -> Vec<u8> {
        let mut w = SnapshotWriter::new(*b"TEST");
        let mut a = SectionBuf::new();
        a.put_u32(7);
        a.put_u64(99);
        a.put_f64(2.5);
        a.put_u8(1);
        let mut b = SectionBuf::new();
        b.put_f32_slice(&[1.0, -2.5, 3.25]);
        b.put_u32_slice(&[10, 20]);
        b.put_u64_slice(&[u64::MAX]);
        w.section(*b"AAAA", a);
        w.section(*b"BBBB", b);
        let mut bytes = Vec::new();
        w.write_to(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn snapshot_container_round_trips() {
        let bytes = sample_snapshot();
        let r = SnapshotReader::read_from(&bytes[..], *b"TEST").unwrap();
        assert_eq!(r.version(), SNAPSHOT_VERSION);
        assert!(r.has_section(*b"AAAA"));
        assert!(!r.has_section(*b"ZZZZ"));
        let mut a = r.section(*b"AAAA").unwrap();
        assert_eq!(a.get_u32().unwrap(), 7);
        assert_eq!(a.get_u64().unwrap(), 99);
        assert_eq!(a.get_f64().unwrap(), 2.5);
        assert_eq!(a.get_u8().unwrap(), 1);
        a.finish().unwrap();
        let mut b = r.section(*b"BBBB").unwrap();
        assert_eq!(b.get_f32_vec(3).unwrap(), vec![1.0, -2.5, 3.25]);
        assert_eq!(b.get_u32_vec(2).unwrap(), vec![10, 20]);
        assert_eq!(b.get_u64_vec(1).unwrap(), vec![u64::MAX]);
        b.finish().unwrap();
    }

    #[test]
    fn snapshot_truncation_detected_at_every_prefix() {
        let bytes = sample_snapshot();
        for cut in 0..bytes.len() {
            let err = SnapshotReader::read_from(&bytes[..cut], *b"TEST").unwrap_err();
            assert!(
                matches!(err, DbLshError::CorruptSnapshot { .. }),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn snapshot_bit_flips_detected() {
        let bytes = sample_snapshot();
        // flip one bit in every byte position; every flip must surface
        // as a typed error (magic, version, kind, table, checksum) —
        // never a panic, never a silent success with changed payload.
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            match SnapshotReader::read_from(&bad[..], *b"TEST") {
                Err(DbLshError::CorruptSnapshot { .. }) => {}
                Err(other) => panic!("flip at {pos}: unexpected error {other:?}"),
                Ok(_) => panic!("flip at {pos} went undetected"),
            }
        }
    }

    #[test]
    fn snapshot_header_mismatches_rejected() {
        let bytes = sample_snapshot();
        // wrong kind
        assert!(matches!(
            SnapshotReader::read_from(&bytes[..], *b"OTHR"),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
        // wrong magic
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(SnapshotReader::read_from(&bad[..], *b"TEST").is_err());
        // future version
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 1).to_le_bytes());
        let err = SnapshotReader::read_from(&bad[..], *b"TEST").unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        // trailing garbage
        let mut bad = bytes.clone();
        bad.push(0);
        let err = SnapshotReader::read_from(&bad[..], *b"TEST").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn snapshot_cursor_overreads_are_typed_errors() {
        let bytes = sample_snapshot();
        let r = SnapshotReader::read_from(&bytes[..], *b"TEST").unwrap();
        let mut a = r.section(*b"AAAA").unwrap();
        // section AAAA is 21 bytes; ask for more
        assert!(matches!(
            a.get_f32_vec(1000),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
        // a partially consumed cursor fails finish()
        let mut a = r.section(*b"AAAA").unwrap();
        a.get_u32().unwrap();
        assert!(matches!(
            a.finish(),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
        // missing section
        assert!(matches!(
            r.section(*b"NOPE"),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
    }

    #[test]
    fn len_frame_round_trips() {
        let mut out = Vec::new();
        write_len_frame(&mut out, b"hello", 64).unwrap();
        write_len_frame(&mut out, b"", 64).unwrap();
        let mut r = &out[..];
        assert_eq!(read_len_frame(&mut r, 64).unwrap().unwrap(), b"hello");
        assert_eq!(read_len_frame(&mut r, 64).unwrap().unwrap(), b"");
        assert!(read_len_frame(&mut r, 64).unwrap().is_none());
    }

    #[test]
    fn len_frame_bounds_are_enforced_both_ways() {
        let mut out = Vec::new();
        assert!(matches!(
            write_len_frame(&mut out, &[0u8; 100], 64),
            Err(DbLshError::InvalidParameter { .. })
        ));
        assert!(
            out.is_empty(),
            "oversized frame must not be partially written"
        );
        // A lying prefix: claims u32::MAX bytes over an empty stream.
        // Must fail on the cap check, before any body allocation.
        let lying = u32::MAX.to_le_bytes();
        assert!(matches!(
            read_len_frame(&mut &lying[..], 1 << 20),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
        // A prefix under the cap but over a short stream: typed
        // truncation, not a hang or over-allocation.
        let mut short = Vec::new();
        short.extend(1000u32.to_le_bytes());
        short.extend(b"abc");
        assert!(matches!(
            read_len_frame(&mut &short[..], 1 << 20),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
        // Truncated prefix itself.
        assert!(matches!(
            read_len_frame(&mut &[7u8, 0][..], 64),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
    }

    #[test]
    fn free_standing_cursor_reads_typed_values() {
        let mut buf = SectionBuf::new();
        buf.put_u16(513);
        buf.put_f32(1.5);
        buf.put_bytes(b"xy");
        assert_eq!(buf.len(), 8);
        assert!(!buf.is_empty());
        let bytes = buf.into_bytes();
        let mut c = SectionCursor::over(*b"WIRE", &bytes);
        assert_eq!(c.remaining(), 8);
        assert_eq!(c.get_u16().unwrap(), 513);
        assert_eq!(c.get_f32().unwrap(), 1.5);
        assert_eq!(c.get_bytes(2).unwrap(), b"xy");
        c.finish().unwrap();
        // over-read on a free-standing cursor is the same typed error
        let mut c = SectionCursor::over(*b"WIRE", &bytes);
        assert!(matches!(
            c.get_bytes(9),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
    }

    #[test]
    fn bvecs_rejects_unrepresentable_coordinates() {
        for bad in [vec![vec![-1.0f32]], vec![vec![256.0]], vec![vec![0.5]]] {
            let d = Dataset::from_rows(&bad);
            let mut buf = Vec::new();
            let err = write_bvecs(&mut buf, &d).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
    }
}
