//! fvecs / ivecs readers and writers (the TEXMEX corpus format used by
//! SIFT/GIST and by the paper's datasets).
//!
//! Layout per vector: a little-endian `i32` dimension header followed by
//! `dim` little-endian payload values (`f32` for fvecs, `i32` for ivecs).

use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::dataset::Dataset;

/// Read the next `i32` dimension header, distinguishing a clean end of
/// stream (`Ok(None)`) from a header truncated mid-way (`InvalidData`).
fn read_dim_header<R: Read>(r: &mut R) -> io::Result<Option<i32>> {
    let mut header = [0u8; 4];
    match r.read_exact(&mut header[..1]) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    match r.read_exact(&mut header[1..]) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "stream ends inside a vector dimension header",
            ));
        }
        Err(e) => return Err(e),
    }
    Ok(Some(i32::from_le_bytes(header)))
}

/// Read an entire fvecs stream into a [`Dataset`].
pub fn read_fvecs<R: Read>(reader: R) -> io::Result<Dataset> {
    let mut r = BufReader::new(reader);
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut buf: Vec<u8> = Vec::new(); // one payload buffer for the whole stream
    while let Some(d) = read_dim_header(&mut r)? {
        if d <= 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("non-positive vector dimension {d}"),
            ));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("inconsistent dimensions: {existing} then {d}"),
                ));
            }
            _ => {}
        }
        buf.resize(d * 4, 0);
        r.read_exact(&mut buf)?;
        data.extend(
            buf.chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
    }
    let dim = dim.unwrap_or(1);
    if data.iter().any(|v| !v.is_finite()) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "non-finite value in fvecs stream",
        ));
    }
    Ok(Dataset::from_flat(dim, data))
}

/// Write a [`Dataset`] as fvecs.
pub fn write_fvecs<W: Write>(writer: W, data: &Dataset) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let dim = data.dim() as i32;
    for i in 0..data.len() {
        w.write_all(&dim.to_le_bytes())?;
        for &v in data.point(i) {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read an ivecs stream (e.g. ground-truth neighbor id lists).
pub fn read_ivecs<R: Read>(reader: R) -> io::Result<Vec<Vec<i32>>> {
    let mut r = BufReader::new(reader);
    let mut out = Vec::new();
    let mut buf: Vec<u8> = Vec::new(); // one payload buffer for the whole stream
    while let Some(d) = read_dim_header(&mut r)? {
        if d < 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("negative vector dimension {d}"),
            ));
        }
        buf.resize(d as usize * 4, 0);
        r.read_exact(&mut buf)?;
        out.push(
            buf.chunks_exact(4)
                .map(|b| i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
                .collect(),
        );
    }
    Ok(out)
}

/// Write id lists as ivecs.
pub fn write_ivecs<W: Write>(writer: W, rows: &[Vec<i32>]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for row in rows {
        w.write_all(&(row.len() as i32).to_le_bytes())?;
        for &v in row {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()
}

/// Read a bvecs stream (`u8` payload — SIFT100M's native format) into a
/// [`Dataset`], widening each byte to `f32`.
///
/// Layout per vector: a little-endian `i32` dimension header followed by
/// `dim` raw `u8` values. Byte datasets are consumed as floats by every
/// algorithm in this workspace, so the reader widens on ingest; use
/// [`write_bvecs`] to go back (it validates that every coordinate is an
/// integer in `0..=255`).
pub fn read_bvecs<R: Read>(reader: R) -> io::Result<Dataset> {
    let mut r = BufReader::new(reader);
    let mut dim: Option<usize> = None;
    let mut data: Vec<f32> = Vec::new();
    let mut buf: Vec<u8> = Vec::new(); // one payload buffer for the whole stream
    while let Some(d) = read_dim_header(&mut r)? {
        if d <= 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("non-positive vector dimension {d}"),
            ));
        }
        let d = d as usize;
        match dim {
            None => dim = Some(d),
            Some(existing) if existing != d => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("inconsistent dimensions: {existing} then {d}"),
                ));
            }
            _ => {}
        }
        buf.resize(d, 0);
        r.read_exact(&mut buf)?;
        data.extend(buf.iter().map(|&b| b as f32));
    }
    Ok(Dataset::from_flat(dim.unwrap_or(1), data))
}

/// Write a [`Dataset`] as bvecs (`u8` payload). Fails with
/// [`io::ErrorKind::InvalidData`] if any coordinate is not an integer in
/// `0..=255` — bvecs cannot represent it.
pub fn write_bvecs<W: Write>(writer: W, data: &Dataset) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    let dim = data.dim() as i32;
    for i in 0..data.len() {
        w.write_all(&dim.to_le_bytes())?;
        for &v in data.point(i) {
            if !(0.0..=255.0).contains(&v) || v.fract() != 0.0 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("coordinate {v} is not representable as u8"),
                ));
            }
            w.write_all(&[v as u8])?;
        }
    }
    w.flush()
}

/// Convenience: load an fvecs file from disk.
pub fn load_fvecs_file<P: AsRef<Path>>(path: P) -> io::Result<Dataset> {
    read_fvecs(std::fs::File::open(path)?)
}

/// Convenience: load a bvecs file from disk.
pub fn load_bvecs_file<P: AsRef<Path>>(path: P) -> io::Result<Dataset> {
    read_bvecs(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fvecs_roundtrip() {
        let d = Dataset::from_rows(&[vec![1.0, 2.5, -3.0], vec![0.0, 9.0, 1e-5]]);
        let mut buf = Vec::new();
        write_fvecs(&mut buf, &d).unwrap();
        assert_eq!(buf.len(), 2 * (4 + 3 * 4));
        let back = read_fvecs(&buf[..]).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn ivecs_roundtrip() {
        let rows = vec![vec![1, 2, 3], vec![], vec![-7]];
        let mut buf = Vec::new();
        write_ivecs(&mut buf, &rows).unwrap();
        let back = read_ivecs(&buf[..]).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn empty_stream_is_empty_dataset() {
        let d = read_fvecs(&[][..]).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn inconsistent_dims_rejected() {
        let mut buf = Vec::new();
        buf.extend(2i32.to_le_bytes());
        buf.extend(1.0f32.to_le_bytes());
        buf.extend(2.0f32.to_le_bytes());
        buf.extend(3i32.to_le_bytes());
        buf.extend([0u8; 12]);
        assert!(read_fvecs(&buf[..]).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut buf = Vec::new();
        buf.extend(4i32.to_le_bytes());
        buf.extend(1.0f32.to_le_bytes()); // only 1 of 4 values
        assert!(read_fvecs(&buf[..]).is_err());
    }

    #[test]
    fn negative_dim_rejected() {
        let buf = (-3i32).to_le_bytes();
        assert!(read_fvecs(&buf[..]).is_err());
    }

    #[test]
    fn bvecs_roundtrip() {
        let d = Dataset::from_rows(&[vec![0.0, 128.0, 255.0], vec![1.0, 2.0, 3.0]]);
        let mut buf = Vec::new();
        write_bvecs(&mut buf, &d).unwrap();
        assert_eq!(buf.len(), 2 * (4 + 3)); // i32 header + dim bytes per row
        let back = read_bvecs(&buf[..]).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn bvecs_empty_stream_is_empty_dataset() {
        let d = read_bvecs(&[][..]).unwrap();
        assert!(d.is_empty());
    }

    #[test]
    fn bvecs_malformed_headers_rejected() {
        // negative dimension
        assert!(read_bvecs(&(-2i32).to_le_bytes()[..]).is_err());
        // zero dimension
        assert!(read_bvecs(&0i32.to_le_bytes()[..]).is_err());
        // truncated header (2 of 4 bytes)
        assert!(read_bvecs(&[3u8, 0][..]).is_err());
        // truncated payload: dim 4, only 2 bytes
        let mut buf = Vec::new();
        buf.extend(4i32.to_le_bytes());
        buf.extend([7u8, 9]);
        assert!(read_bvecs(&buf[..]).is_err());
        // inconsistent dims across vectors
        let mut buf = Vec::new();
        buf.extend(2i32.to_le_bytes());
        buf.extend([1u8, 2]);
        buf.extend(3i32.to_le_bytes());
        buf.extend([3u8, 4, 5]);
        assert!(read_bvecs(&buf[..]).is_err());
    }

    #[test]
    fn bvecs_rejects_unrepresentable_coordinates() {
        for bad in [vec![vec![-1.0f32]], vec![vec![256.0]], vec![vec![0.5]]] {
            let d = Dataset::from_rows(&bad);
            let mut buf = Vec::new();
            let err = write_bvecs(&mut buf, &d).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        }
    }
}
