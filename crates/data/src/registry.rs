//! Catalogue of the paper's evaluation datasets (Table III), each mapped
//! to a seeded synthetic clone.
//!
//! The real corpora (SIFT, GIST, MNIST, ...) are not redistributable in
//! this repository, so each registry entry records the *shape* of the
//! original (cardinality, dimensionality) together with a mixture
//! configuration whose relative-contrast structure puts LSH methods in the
//! same operating regime: most datasets are well-clustered (recall in the
//! 0.8–0.95 band at the paper's parameters), while NUS is deliberately
//! generated with weak cluster structure (the paper observes "on NUS, all
//! algorithms perform slightly inferior due to intrinsically complex
//! distribution").
//!
//! `generate(scale)` shrinks cardinality (never dimensionality) so the
//! full experiment grid runs on a laptop; users with the real fvecs files
//! can load them through [`crate::io`] instead.

use crate::dataset::Dataset;
use crate::synthetic::{gaussian_mixture, MixtureConfig};

/// One dataset of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperDataset {
    Audio,
    Mnist,
    Cifar,
    Trevi,
    Nus,
    Deep1M,
    Gist,
    Sift10M,
    TinyImages80M,
    Sift100M,
}

impl PaperDataset {
    /// All ten datasets in the paper's table order.
    pub const ALL: [PaperDataset; 10] = [
        PaperDataset::Audio,
        PaperDataset::Mnist,
        PaperDataset::Cifar,
        PaperDataset::Trevi,
        PaperDataset::Nus,
        PaperDataset::Deep1M,
        PaperDataset::Gist,
        PaperDataset::Sift10M,
        PaperDataset::TinyImages80M,
        PaperDataset::Sift100M,
    ];

    /// Name as printed in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            PaperDataset::Audio => "Audio",
            PaperDataset::Mnist => "MNIST",
            PaperDataset::Cifar => "Cifar",
            PaperDataset::Trevi => "Trevi",
            PaperDataset::Nus => "NUS",
            PaperDataset::Deep1M => "Deep1M",
            PaperDataset::Gist => "Gist",
            PaperDataset::Sift10M => "SIFT10M",
            PaperDataset::TinyImages80M => "TinyImages80M",
            PaperDataset::Sift100M => "SIFT100M",
        }
    }

    /// Cardinality of the real corpus (Table III).
    pub fn full_cardinality(&self) -> usize {
        match self {
            PaperDataset::Audio => 54_387,
            PaperDataset::Mnist => 60_000,
            PaperDataset::Cifar => 60_000,
            PaperDataset::Trevi => 101_120,
            PaperDataset::Nus => 269_648,
            PaperDataset::Deep1M => 1_000_000,
            PaperDataset::Gist => 1_000_000,
            PaperDataset::Sift10M => 10_000_000,
            PaperDataset::TinyImages80M => 79_302_017,
            PaperDataset::Sift100M => 100_000_000,
        }
    }

    /// Dimensionality of the real corpus (Table III).
    pub fn dim(&self) -> usize {
        match self {
            PaperDataset::Audio => 192,
            PaperDataset::Mnist => 784,
            PaperDataset::Cifar => 1024,
            PaperDataset::Trevi => 4096,
            PaperDataset::Nus => 500,
            PaperDataset::Deep1M => 256,
            PaperDataset::Gist => 960,
            PaperDataset::Sift10M => 128,
            PaperDataset::TinyImages80M => 384,
            PaperDataset::Sift100M => 128,
        }
    }

    /// Data type label of Table III.
    pub fn kind(&self) -> &'static str {
        match self {
            PaperDataset::Audio => "Audio",
            PaperDataset::Mnist | PaperDataset::Cifar | PaperDataset::Trevi => "Image",
            PaperDataset::Nus | PaperDataset::Sift10M | PaperDataset::Sift100M => {
                "SIFT Description"
            }
            PaperDataset::Deep1M => "DEEP Description",
            PaperDataset::Gist | PaperDataset::TinyImages80M => "GIST Description",
        }
    }

    /// Mixture configuration for the synthetic clone at `scale` (fraction
    /// of the original cardinality, clamped to at least 2000 points).
    pub fn config(&self, scale: f64) -> MixtureConfig {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.full_cardinality() as f64 * scale) as usize).max(2000);
        let clusters = ((n as f64).sqrt() as usize / 2).clamp(16, 1024);
        // NUS is the paper's "hard" dataset: weak clusters, heavy noise.
        let (cluster_std, noise_frac) = match self {
            PaperDataset::Nus => (8.0, 0.5),
            _ => (1.5, 0.05),
        };
        MixtureConfig {
            n,
            dim: self.dim(),
            clusters,
            cluster_std,
            spread: 50.0,
            noise_frac,
            // stable per-dataset seed so every experiment sees the same data
            seed: 0xDB15C0DE ^ (*self as u64),
        }
    }

    /// Generate the synthetic clone at `scale`.
    pub fn generate(&self, scale: f64) -> Dataset {
        gaussian_mixture(&self.config(scale))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_shapes() {
        assert_eq!(PaperDataset::Audio.full_cardinality(), 54_387);
        assert_eq!(PaperDataset::Trevi.dim(), 4096);
        assert_eq!(PaperDataset::Sift100M.full_cardinality(), 100_000_000);
        assert_eq!(PaperDataset::ALL.len(), 10);
    }

    #[test]
    fn generate_scales_cardinality() {
        let d = PaperDataset::Audio.generate(0.1);
        assert_eq!(d.dim(), 192);
        assert_eq!(d.len(), 5438);
    }

    #[test]
    fn generate_clamps_tiny_scales() {
        let d = PaperDataset::Audio.generate(1e-6);
        assert_eq!(d.len(), 2000);
    }

    #[test]
    fn deterministic_per_dataset() {
        let a = PaperDataset::Mnist.generate(0.01);
        let b = PaperDataset::Mnist.generate(0.01);
        assert_eq!(a, b);
        let c = PaperDataset::Cifar.generate(0.01);
        assert_ne!(a.flat()[..32], c.flat()[..32]);
    }

    #[test]
    fn nus_is_harder_than_audio() {
        let nus = PaperDataset::Nus.config(0.01);
        let audio = PaperDataset::Audio.config(0.01);
        assert!(nus.noise_frac > audio.noise_frac);
        assert!(nus.cluster_std > audio.cluster_std);
    }

    #[test]
    #[should_panic(expected = "scale")]
    fn zero_scale_panics() {
        PaperDataset::Audio.generate(0.0);
    }
}
