//! Write-ahead log container — the durability half of the snapshot
//! story. A snapshot (see [`crate::io`]) is a checkpoint; the WAL is
//! the ordered stream of mutations applied *after* that checkpoint.
//! Recovery is `load snapshot + replay WAL`, and a successful new
//! checkpoint truncates the log.
//!
//! # WAL file format
//!
//! The layout reuses the snapshot container idioms (little-endian
//! primitives, CRC-32 framing, typed errors), documented next to the
//! snapshot format on purpose — the two files are read by the same
//! recovery path:
//!
//! ```text
//! magic    8 bytes  "DBLSHWAL"
//! version  u32 LE   WAL format version (currently 1)
//! kind     4 bytes  what the records describe (e.g. "SWAL" for a
//!                   fleet shard's op log, "RWAL" for a replica group)
//! records  any number of:
//!   len    u32 LE   payload byte count
//!   crc32  u32 LE   CRC-32 (IEEE 802.3) over the payload
//!   payload len bytes, schema owned by the appender
//! ```
//!
//! # Torn-tail tolerance
//!
//! Appends are acknowledged only after the whole record reached the
//! OS, so a crash can leave **at most a prefix of the final record**
//! on disk. [`replay_wal`] therefore treats *end-of-file inside the
//! last record* as a torn tail: the partial record is dropped (it was
//! never acknowledged) and `torn` is reported so the caller can
//! physically truncate back to [`WalReplay::valid_len`]. Everything
//! else — a short header, a CRC mismatch (bit flip) on any *complete*
//! record, an implausible length with all four length bytes present —
//! is a typed [`DbLshError::CorruptSnapshot`], exactly like the
//! snapshot reader: recovery never invents state from damaged bytes.
//!
//! # Fault injection
//!
//! [`WriteFaultPlan`] + [`FaultyWriter`] inject deterministic, seeded
//! I/O faults (spurious [`io::ErrorKind::Interrupted`], short writes,
//! a hard failure after N bytes) underneath any writer. [`WalFile`]
//! accepts a plan directly so torture harnesses can prove that an
//! interrupted append either completes (interrupts/short writes are
//! retried) or rolls the file back to the last committed record.

use std::fs::OpenOptions;
use std::io::{self, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::error::DbLshError;
use crate::io::crc32;

/// Magic bytes opening every WAL stream.
pub const WAL_MAGIC: [u8; 8] = *b"DBLSHWAL";

/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

/// Byte length of the fixed WAL header (magic + version + kind).
pub const WAL_HEADER_LEN: u64 = 16;

/// Upper bound on a single record payload. A length field above this
/// with all four bytes present cannot be a torn tail — it is corruption.
pub const MAX_WAL_RECORD: u32 = 1 << 30;

fn wal_header(kind: [u8; 4]) -> [u8; 16] {
    let mut h = [0u8; 16];
    h[..8].copy_from_slice(&WAL_MAGIC);
    h[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[12..].copy_from_slice(&kind);
    h
}

/// Frame one record (`len | crc32 | payload`) for appending. Refuses
/// payloads over [`MAX_WAL_RECORD`] with a typed error.
pub fn encode_wal_record(payload: &[u8]) -> Result<Vec<u8>, DbLshError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_WAL_RECORD)
        .ok_or_else(|| {
            DbLshError::invalid(
                "wal_record",
                format!(
                    "record payload of {} bytes exceeds the {MAX_WAL_RECORD}-byte cap",
                    payload.len()
                ),
            )
        })?;
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&len.to_le_bytes());
    rec.extend_from_slice(&crc32(payload).to_le_bytes());
    rec.extend_from_slice(payload);
    Ok(rec)
}

/// Outcome of [`replay_wal`]: the complete records, whether a torn
/// final record was dropped, and the byte length of the valid prefix.
#[derive(Debug)]
pub struct WalReplay {
    /// Payloads of every complete, checksum-verified record, in append
    /// order.
    pub records: Vec<Vec<u8>>,
    /// Whether the stream ended inside a record (half-written final
    /// append, dropped — it was never acknowledged).
    pub torn: bool,
    /// Byte length of the valid prefix (header + complete records).
    /// Callers owning the underlying file should `set_len` to this
    /// before appending again.
    pub valid_len: u64,
}

/// Replay a WAL stream of the expected `kind`. See the module docs for
/// which damage is tolerated (EOF inside the final record) and which is
/// a typed [`DbLshError::CorruptSnapshot`] (everything else).
pub fn replay_wal<R: Read>(reader: R, kind: [u8; 4]) -> Result<WalReplay, DbLshError> {
    let mut r = BufReader::new(reader);
    let mut header = [0u8; 16];
    r.read_exact(&mut header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            DbLshError::corrupt("stream ends inside the WAL header")
        } else {
            DbLshError::io("read", e)
        }
    })?;
    if header[..8] != WAL_MAGIC {
        return Err(DbLshError::corrupt("not a DB-LSH WAL (bad magic)"));
    }
    let mut version_bytes = [0u8; 4];
    version_bytes.copy_from_slice(&header[8..12]);
    let version = u32::from_le_bytes(version_bytes);
    if version == 0 || version > WAL_VERSION {
        return Err(DbLshError::corrupt(format!(
            "unsupported WAL version {version} (this build reads up to {WAL_VERSION})"
        )));
    }
    if header[12..] != kind {
        return Err(DbLshError::corrupt(format!(
            "WAL kind mismatch: expected {:?}, found {:?}",
            String::from_utf8_lossy(&kind),
            String::from_utf8_lossy(&header[12..]),
        )));
    }

    let mut records: Vec<Vec<u8>> = Vec::new();
    let mut valid_len = WAL_HEADER_LEN;
    let mut torn = false;
    // Read a fixed-size field; Ok(false) = EOF before any byte (clean
    // boundary if `at_boundary`, torn otherwise), Ok(true) = complete.
    // EOF mid-field is always a torn tail.
    fn read_field<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<Option<bool>, DbLshError> {
        match r.read_exact(&mut buf[..1]) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(Some(false)),
            Err(e) => return Err(DbLshError::io("read", e)),
        }
        match r.read_exact(&mut buf[1..]) {
            Ok(()) => Ok(None),
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(Some(true)),
            Err(e) => Err(DbLshError::io("read", e)),
        }
    }
    loop {
        let mut word = [0u8; 4];
        match read_field(&mut r, &mut word)? {
            Some(false) => break, // clean EOF at a record boundary
            Some(true) => {
                torn = true;
                break;
            }
            None => {}
        }
        let len = u32::from_le_bytes(word);
        if len > MAX_WAL_RECORD {
            // All four length bytes are present, so this is not a torn
            // prefix — it is a bit flip or schema damage.
            return Err(DbLshError::corrupt(format!(
                "WAL record {} claims an implausible length {len}",
                records.len()
            )));
        }
        if read_field(&mut r, &mut word)?.is_some() {
            torn = true;
            break;
        }
        let crc = u32::from_le_bytes(word);
        let mut payload = Vec::new();
        r.by_ref()
            .take(len as u64)
            .read_to_end(&mut payload)
            .map_err(|e| DbLshError::io("read", e))?;
        if payload.len() as u64 != len as u64 {
            torn = true;
            break;
        }
        if crc32(&payload) != crc {
            return Err(DbLshError::corrupt(format!(
                "checksum mismatch in WAL record {}",
                records.len()
            )));
        }
        valid_len += 8 + len as u64;
        records.push(payload);
    }
    Ok(WalReplay {
        records,
        torn,
        valid_len,
    })
}

/// Append-only WAL over any byte sink — the in-memory / test-harness
/// counterpart of [`WalFile`]. A failed append may leave a torn record
/// in the stream (there is no seek to roll back); replaying such a
/// stream drops the tail, exactly as a crashed process would.
#[derive(Debug)]
pub struct WalWriter<W: Write> {
    w: W,
}

impl<W: Write> WalWriter<W> {
    /// Open a fresh WAL stream of the given `kind` (writes the header).
    pub fn new(mut w: W, kind: [u8; 4]) -> Result<Self, DbLshError> {
        w.write_all(&wal_header(kind))
            .map_err(|e| DbLshError::io("write", e))?;
        Ok(WalWriter { w })
    }

    /// Append one record.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), DbLshError> {
        let rec = encode_wal_record(payload)?;
        self.w
            .write_all(&rec)
            .map_err(|e| DbLshError::io("write", e))
    }

    /// Recover the underlying sink.
    pub fn into_inner(self) -> W {
        self.w
    }
}

/// File-backed WAL with rollback: a failed append truncates the file
/// back to the last committed record, so the log on disk is *always*
/// a clean prefix of acknowledged records (plus, after a crash, at
/// most one torn tail that [`WalFile::open`] removes).
#[derive(Debug)]
pub struct WalFile {
    file: std::fs::File,
    path: PathBuf,
    kind: [u8; 4],
    len: u64,
    records: u64,
    poisoned: bool,
    faults: Option<WriteFaultPlan>,
}

impl WalFile {
    /// Create (or truncate to empty) the WAL at `path` and fsync the
    /// fresh header, so a log that a manifest later claims exists is
    /// never half-created.
    pub fn create<P: AsRef<Path>>(path: P, kind: [u8; 4]) -> Result<Self, DbLshError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)
            .map_err(|e| DbLshError::io("create", e))?;
        file.write_all(&wal_header(kind))
            .map_err(|e| DbLshError::io("write", e))?;
        file.sync_all().map_err(|e| DbLshError::io("fsync", e))?;
        crate::io::sync_parent_dir(&path)?;
        Ok(WalFile {
            file,
            path,
            kind,
            len: WAL_HEADER_LEN,
            records: 0,
            poisoned: false,
            faults: None,
        })
    }

    /// Open an existing WAL, replay it, and physically truncate any
    /// torn tail so subsequent appends extend a clean prefix. Returns
    /// the file handle positioned for appending plus the replayed
    /// records.
    pub fn open<P: AsRef<Path>>(path: P, kind: [u8; 4]) -> Result<(Self, WalReplay), DbLshError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .map_err(|e| DbLshError::io("open", e))?;
        let replay = replay_wal(&mut file, kind)?;
        let disk_len = file
            .seek(SeekFrom::End(0))
            .map_err(|e| DbLshError::io("seek", e))?;
        if disk_len != replay.valid_len {
            file.set_len(replay.valid_len)
                .map_err(|e| DbLshError::io("truncate", e))?;
        }
        file.seek(SeekFrom::Start(replay.valid_len))
            .map_err(|e| DbLshError::io("seek", e))?;
        let wal = WalFile {
            file,
            path,
            kind,
            len: replay.valid_len,
            records: replay.records.len() as u64,
            poisoned: false,
            faults: None,
        };
        Ok((wal, replay))
    }

    /// Append one record. On failure the file is rolled back to the
    /// last committed record; if even the rollback fails the log is
    /// poisoned and every further append reports it.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), DbLshError> {
        if self.poisoned {
            return Err(DbLshError::corrupt(
                "WAL is poisoned: an earlier failed append could not be rolled back",
            ));
        }
        let rec = encode_wal_record(payload)?;
        let wrote = match self.faults.as_mut() {
            None => self
                .file
                .write_all(&rec)
                .map_err(|e| DbLshError::io("write", e)),
            Some(plan) => {
                write_all_faulty(&mut self.file, plan, &rec).map_err(|e| DbLshError::io("write", e))
            }
        };
        match wrote {
            Ok(()) => {
                self.len += rec.len() as u64;
                self.records += 1;
                Ok(())
            }
            Err(e) => {
                let rolled_back = self.file.set_len(self.len).is_ok()
                    && self.file.seek(SeekFrom::Start(self.len)).is_ok();
                if !rolled_back {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// fsync the log — the power-loss durability point. Appends alone
    /// reach the OS (process-crash durable) but not necessarily the
    /// disk.
    pub fn sync(&self) -> Result<(), DbLshError> {
        self.file
            .sync_data()
            .map_err(|e| DbLshError::io("fsync", e))
    }

    /// Drop every record (after a successful checkpoint made them
    /// redundant), leaving just the header.
    pub fn truncate(&mut self) -> Result<(), DbLshError> {
        self.file
            .set_len(WAL_HEADER_LEN)
            .map_err(|e| DbLshError::io("truncate", e))?;
        self.file
            .seek(SeekFrom::Start(WAL_HEADER_LEN))
            .map_err(|e| DbLshError::io("seek", e))?;
        self.file
            .sync_all()
            .map_err(|e| DbLshError::io("fsync", e))?;
        self.len = WAL_HEADER_LEN;
        self.records = 0;
        self.poisoned = false;
        Ok(())
    }

    /// Committed byte length (header + complete records).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no records.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Number of committed records.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// The 4-byte kind tag this log was created with.
    pub fn kind(&self) -> [u8; 4] {
        self.kind
    }

    /// Path of the backing file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Whether a failed rollback has poisoned the log.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// Install (or clear) a deterministic I/O fault plan applied to
    /// every subsequent append — the torture-harness hook.
    pub fn set_faults(&mut self, faults: Option<WriteFaultPlan>) {
        self.faults = faults;
    }
}

/// Deterministic, seeded schedule of write faults: spurious
/// [`io::ErrorKind::Interrupted`] results, short writes, and an
/// optional hard failure once a byte budget is exhausted. The same
/// seed replays the same fault sequence.
#[derive(Debug, Clone)]
pub struct WriteFaultPlan {
    state: u64,
    interrupt_prob: f64,
    short_prob: f64,
    fail_after: Option<u64>,
    written: u64,
}

impl WriteFaultPlan {
    /// A plan that injects nothing until configured.
    pub fn new(seed: u64) -> Self {
        WriteFaultPlan {
            state: seed,
            interrupt_prob: 0.0,
            short_prob: 0.0,
            fail_after: None,
            written: 0,
        }
    }

    /// Each write call returns `ErrorKind::Interrupted` with
    /// probability `p` (before touching the sink).
    pub fn with_interrupts(mut self, p: f64) -> Self {
        self.interrupt_prob = p;
        self
    }

    /// Each write call accepts only half its buffer with probability
    /// `p` (a short write the caller must loop over).
    pub fn with_short_writes(mut self, p: f64) -> Self {
        self.short_prob = p;
        self
    }

    /// After `n` bytes have passed through, every further write fails
    /// hard with [`io::ErrorKind::Other`] — the "disk died mid-append"
    /// case. Bytes up to the budget still land, so a record can be
    /// physically torn.
    pub fn with_hard_fail_after(mut self, n: u64) -> Self {
        self.fail_after = Some(n);
        self
    }

    /// Total bytes the plan has let through.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    fn next_u64(&mut self) -> u64 {
        // splitmix64 — the workspace-standard seedable generator.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, p: f64) -> bool {
        p > 0.0 && ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

/// One faulted write attempt against `inner` — shared by
/// [`FaultyWriter`] and [`WalFile`]'s internal retry loop.
fn apply_fault<W: Write>(
    plan: &mut WriteFaultPlan,
    inner: &mut W,
    buf: &[u8],
) -> io::Result<usize> {
    if let Some(budget) = plan.fail_after {
        if plan.written >= budget {
            return Err(io::Error::other("injected write failure (fault plan)"));
        }
        let allowed = (budget - plan.written).min(buf.len() as u64) as usize;
        if allowed < buf.len() {
            // Let the allowed prefix land (tearing the record), then
            // fail on the next call.
            let n = inner.write(&buf[..allowed])?;
            plan.written += n as u64;
            return Ok(n);
        }
    }
    if plan.chance(plan.interrupt_prob) {
        return Err(io::Error::new(
            io::ErrorKind::Interrupted,
            "injected interrupt (fault plan)",
        ));
    }
    let take = if plan.chance(plan.short_prob) && buf.len() > 1 {
        buf.len() / 2
    } else {
        buf.len()
    };
    let n = inner.write(&buf[..take])?;
    plan.written += n as u64;
    Ok(n)
}

/// `write_all` through a fault plan: retries injected interrupts and
/// loops over short writes (the contract `std::io::Write::write_all`
/// provides), surfacing only hard failures.
pub fn write_all_faulty<W: Write>(
    inner: &mut W,
    plan: &mut WriteFaultPlan,
    mut buf: &[u8],
) -> io::Result<()> {
    while !buf.is_empty() {
        match apply_fault(plan, inner, buf) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "sink accepted no bytes",
                ))
            }
            Ok(n) => buf = &buf[n..],
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// A [`Write`] adapter injecting the faults of a [`WriteFaultPlan`]
/// into any sink — wrap a `Vec<u8>`, a file, or a socket half to prove
/// a writer's retry discipline.
#[derive(Debug)]
pub struct FaultyWriter<W: Write> {
    inner: W,
    plan: WriteFaultPlan,
}

impl<W: Write> FaultyWriter<W> {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: W, plan: WriteFaultPlan) -> Self {
        FaultyWriter { inner, plan }
    }

    /// Recover the sink.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// The plan's current state (e.g. to read `bytes_written`).
    pub fn plan(&self) -> &WriteFaultPlan {
        &self.plan
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        apply_fault(&mut self.plan, &mut self.inner, buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIND: [u8; 4] = *b"TWAL";

    fn sample_records() -> Vec<Vec<u8>> {
        vec![
            b"first record".to_vec(),
            Vec::new(),
            vec![0xAB; 100],
            b"tail".to_vec(),
        ]
    }

    fn sample_stream() -> Vec<u8> {
        let mut w = WalWriter::new(Vec::new(), KIND).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        w.into_inner()
    }

    #[test]
    fn wal_round_trips_in_memory() {
        let bytes = sample_stream();
        let replay = replay_wal(&bytes[..], KIND).unwrap();
        assert_eq!(replay.records, sample_records());
        assert!(!replay.torn);
        assert_eq!(replay.valid_len, bytes.len() as u64);
    }

    #[test]
    fn wal_header_mismatches_rejected() {
        let bytes = sample_stream();
        // wrong kind
        assert!(matches!(
            replay_wal(&bytes[..], *b"OTHR"),
            Err(DbLshError::CorruptSnapshot { .. })
        ));
        // bad magic
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(replay_wal(&bad[..], KIND).is_err());
        // future version
        let mut bad = bytes.clone();
        bad[8..12].copy_from_slice(&(WAL_VERSION + 1).to_le_bytes());
        let err = replay_wal(&bad[..], KIND).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn wal_truncation_at_every_byte_yields_a_clean_prefix() {
        let bytes = sample_stream();
        let originals = sample_records();
        // Record boundaries for cross-checking which cuts are clean.
        let mut boundaries = vec![WAL_HEADER_LEN as usize];
        for r in &originals {
            boundaries.push(boundaries.last().unwrap() + 8 + r.len());
        }
        for cut in 0..=bytes.len() {
            let res = replay_wal(&bytes[..cut], KIND);
            if cut < WAL_HEADER_LEN as usize {
                assert!(
                    matches!(res, Err(DbLshError::CorruptSnapshot { .. })),
                    "cut at {cut} inside the header must be corrupt"
                );
                continue;
            }
            let replay = res.unwrap_or_else(|e| panic!("cut at {cut}: {e}"));
            // The survivors must be exactly the records whose frames
            // fit entirely below the cut.
            let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(replay.records.len(), expect, "cut at {cut}");
            assert_eq!(&replay.records[..], &originals[..expect], "cut at {cut}");
            assert_eq!(replay.torn, !boundaries.contains(&cut), "cut at {cut}");
            assert_eq!(replay.valid_len as usize, boundaries[expect]);
        }
    }

    #[test]
    fn wal_bit_flips_never_surface_wrong_records() {
        let bytes = sample_stream();
        let originals = sample_records();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            match replay_wal(&bad[..], KIND) {
                // Typed corruption — the usual outcome.
                Err(DbLshError::CorruptSnapshot { .. }) => {}
                Err(other) => panic!("flip at {pos}: unexpected error {other:?}"),
                // A flip in a length field can mimic a torn tail (the
                // stream "ends inside" the inflated record). That drops
                // records but must never *alter* one: whatever survives
                // must be a strict prefix of the originals.
                Ok(replay) => {
                    assert!(
                        replay.torn && replay.records.len() < originals.len(),
                        "flip at {pos} went fully undetected"
                    );
                    assert_eq!(
                        &replay.records[..],
                        &originals[..replay.records.len()],
                        "flip at {pos} altered a surviving record"
                    );
                }
            }
        }
    }

    #[test]
    fn wal_file_append_open_truncate_cycle() {
        let dir = std::env::temp_dir().join(format!("dblsh-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cycle.wal");
        {
            let mut wal = WalFile::create(&path, KIND).unwrap();
            assert!(wal.is_empty());
            for r in sample_records() {
                wal.append(&r).unwrap();
            }
            assert_eq!(wal.record_count(), 4);
            wal.sync().unwrap();
        }
        // Reopen: full replay, then append more.
        let (mut wal, replay) = WalFile::open(&path, KIND).unwrap();
        assert_eq!(replay.records, sample_records());
        assert!(!replay.torn);
        wal.append(b"fifth").unwrap();
        assert_eq!(wal.record_count(), 5);
        drop(wal);
        let (mut wal, replay) = WalFile::open(&path, KIND).unwrap();
        assert_eq!(replay.records.len(), 5);
        // Checkpoint: truncate drops everything but the header.
        wal.truncate().unwrap();
        assert!(wal.is_empty());
        assert_eq!(wal.len(), WAL_HEADER_LEN);
        wal.append(b"post-checkpoint").unwrap();
        drop(wal);
        let (_, replay) = WalFile::open(&path, KIND).unwrap();
        assert_eq!(replay.records, vec![b"post-checkpoint".to_vec()]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_file_open_truncates_torn_tail() {
        let dir = std::env::temp_dir().join(format!("dblsh-wal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.wal");
        let mut wal = WalFile::create(&path, KIND).unwrap();
        wal.append(b"committed").unwrap();
        let committed = wal.len();
        drop(wal);
        // Simulate a crash mid-append: a torn half-record at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        let torn = encode_wal_record(b"never acknowledged").unwrap();
        bytes.extend_from_slice(&torn[..torn.len() - 5]);
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, replay) = WalFile::open(&path, KIND).unwrap();
        assert!(replay.torn);
        assert_eq!(replay.records, vec![b"committed".to_vec()]);
        assert_eq!(replay.valid_len, committed);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed);
        // The log is clean again: appends extend the valid prefix.
        wal.append(b"after recovery").unwrap();
        drop(wal);
        let (_, replay) = WalFile::open(&path, KIND).unwrap();
        assert!(!replay.torn);
        assert_eq!(
            replay.records,
            vec![b"committed".to_vec(), b"after recovery".to_vec()]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn interrupts_and_short_writes_are_absorbed() {
        // A hostile sink: every write call has a coin-flip chance of a
        // spurious interrupt and of accepting only half the buffer.
        // WalWriter::append goes through write_all, which must retry
        // both — the stream must come out byte-identical.
        let plan = WriteFaultPlan::new(42)
            .with_interrupts(0.5)
            .with_short_writes(0.5);
        let mut w = WalWriter::new(FaultyWriter::new(Vec::new(), plan), KIND).unwrap();
        for r in sample_records() {
            w.append(&r).unwrap();
        }
        let bytes = w.into_inner().into_inner();
        assert_eq!(bytes, sample_stream());
    }

    #[test]
    fn hard_write_failure_rolls_the_file_back() {
        let dir = std::env::temp_dir().join(format!("dblsh-wal-fail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fail.wal");
        let mut wal = WalFile::create(&path, KIND).unwrap();
        wal.append(b"durable").unwrap();
        let committed = wal.len();
        // Fail 3 bytes into the next record: a torn frame lands, the
        // append reports Io, and the rollback removes the torn bytes.
        wal.set_faults(Some(WriteFaultPlan::new(7).with_hard_fail_after(3)));
        let err = wal.append(b"lost to the fault").unwrap_err();
        assert!(matches!(err, DbLshError::Io { .. }), "{err:?}");
        assert!(!wal.is_poisoned());
        assert_eq!(wal.len(), committed);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed);
        // Clearing the faults, the log keeps working.
        wal.set_faults(None);
        wal.append(b"recovered").unwrap();
        drop(wal);
        let (_, replay) = WalFile::open(&path, KIND).unwrap();
        assert!(!replay.torn);
        assert_eq!(
            replay.records,
            vec![b"durable".to_vec(), b"recovered".to_vec()]
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_record_refused_before_touching_the_log() {
        assert!(matches!(
            encode_wal_record(&vec![0u8; MAX_WAL_RECORD as usize + 1]),
            Err(DbLshError::InvalidParameter { .. })
        ));
    }
}
