//! Blocked hot-path kernels: batched multi-point distance verification
//! and the row-panel matvec behind every query projection.
//!
//! Both kernels exist to organize memory traffic, not to change the math:
//!
//! * [`sq_dist_block`] verifies one query against a *batch* of dataset
//!   rows in one call. Callers sort the batch into memory order first
//!   (ascending row id), which turns the gather into a near-sequential
//!   sweep — on a locality-relabeled dataset the rows of one tree leaf
//!   are physically adjacent. Per row it runs the 4-way-unrolled scalar
//!   kernel: a 4-rows-fused variant (query chunk shared across four row
//!   streams, one accumulator bank per row) was benchmarked *slower*
//!   here — on the SSE2 baseline LLVM vectorizes the fusion across rows
//!   with six shuffles per chunk, while the scalar kernel's per-row
//!   4-lane pattern already saturates the FP units, and the out-of-order
//!   core overlaps consecutive rows' loads on its own (see the
//!   `verify/sq_dist_*` criterion group).
//! * [`matvec`] computes `out[j] = a_j . x` for a row-major panel of
//!   projection rows, two rows at a time sharing each `x` load — the
//!   query-side `G_i(q)` projection that every LSH method in this
//!   workspace pays per query.
//!
//! # Bitwise determinism
//!
//! Per-row results are **bit-identical** to the scalar kernels
//! ([`crate::dataset::sq_dist`] and a single-row dot): every lane uses
//! the same 4-way accumulator pattern over the same dimension order with
//! the same `(s0 + s1) + (s2 + s3)` reduction. A row's distance therefore
//! does not depend on its position inside a block or on the block
//! boundaries — which is what lets a locality-relabeled index return
//! byte-identical answers to an identity-order build (the relabel parity
//! property tests assert exactly this).

use crate::dataset::sq_dist;

/// Squared distances from `q` to the rows `ids` of the row-major matrix
/// `flat` (rows are `dim` wide), written into `out[j]` for `ids[j]`.
///
/// Every per-row result is **bit-identical** to [`sq_dist`]`(q, row)`
/// regardless of batch composition. Callers that sort `ids` ascending
/// turn the row gather into a monotone — on a relabeled store
/// near-sequential — memory sweep (see the module docs for why the
/// per-row path is the scalar kernel rather than a multi-row fusion).
///
/// # Contract
/// (debug-checked) `q.len() == dim`, `out.len() == ids.len()`, and every
/// id indexes a full row of `flat`.
#[inline]
pub fn sq_dist_block(q: &[f32], flat: &[f32], dim: usize, ids: &[u32], out: &mut [f32]) {
    debug_assert_eq!(q.len(), dim, "query dimensionality mismatch");
    debug_assert_eq!(out.len(), ids.len(), "output length mismatch");
    debug_assert!(
        ids.iter().all(|&id| (id as usize + 1) * dim <= flat.len()),
        "row id out of range"
    );
    for (o, &id) in out.iter_mut().zip(ids) {
        *o = sq_dist(q, &flat[id as usize * dim..id as usize * dim + dim]);
    }
}

/// The canonical blocked-verification staging shared by the DB-LSH core
/// and the baselines' `Verifier`: sort the fresh `block` of row ids into
/// memory order, compute their squared distances from `q` with
/// [`sq_dist_block`], and fill `keys` with the canonical consumption
/// keys — `(squared-distance bits << 32) | public id` — sorted ascending.
/// IEEE-754 bit order is value order for the non-negative squared
/// distances, so key order is ascending `(distance, public id)`; recover
/// the parts with [`key_parts`].
///
/// `to_public` maps a row id to the id embedded in the key: the DB-LSH
/// core passes its internal→external map, callers without an id
/// indirection pass the identity.
#[inline]
pub fn canonical_verify_keys(
    q: &[f32],
    flat: &[f32],
    dim: usize,
    block: &mut [u32],
    dists: &mut Vec<f32>,
    keys: &mut Vec<u64>,
    to_public: impl Fn(u32) -> u32,
) {
    block.sort_unstable();
    dists.resize(block.len(), 0.0);
    sq_dist_block(q, flat, dim, block, dists);
    keys.clear();
    for (&id, &d2) in block.iter().zip(dists.iter()) {
        keys.push(((d2.to_bits() as u64) << 32) | to_public(id) as u64);
    }
    keys.sort_unstable();
}

/// Split a key produced by [`canonical_verify_keys`] back into
/// `(public id, exact distance)`.
#[inline]
pub fn key_parts(key: u64) -> (u32, f64) {
    let d2 = f32::from_bits((key >> 32) as u32) as f64;
    (key as u32, d2.sqrt())
}

/// Dot product of one `f64` projection row with an `f32` point,
/// accumulated in `f64` with the shared 4-way unroll. The single-row
/// lane of [`matvec`]; kept public for callers projecting one row.
#[inline]
pub fn dot_f64(a: &[f64], x: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), x.len());
    let chunks = a.len() / 4;
    let (a4, ar) = a.split_at(chunks * 4);
    let (x4, xr) = x.split_at(chunks * 4);
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    for (ca, cx) in a4.chunks_exact(4).zip(x4.chunks_exact(4)) {
        s0 += ca[0] * cx[0] as f64;
        s1 += ca[1] * cx[1] as f64;
        s2 += ca[2] * cx[2] as f64;
        s3 += ca[3] * cx[3] as f64;
    }
    for (va, vx) in ar.iter().zip(xr) {
        s0 += va * *vx as f64;
    }
    (s0 + s1) + (s2 + s3)
}

/// Two rows of [`matvec`] at once, sharing each `x` load. Per-row
/// accumulation is bit-identical to [`dot_f64`].
#[inline]
fn dot2_f64(a0: &[f64], a1: &[f64], x: &[f32]) -> (f64, f64) {
    debug_assert!(a0.len() == x.len() && a1.len() == x.len());
    let chunks = x.len() / 4;
    let split = chunks * 4;
    let (a04, a0r) = a0.split_at(split);
    let (a14, a1r) = a1.split_at(split);
    let (x4, xr) = x.split_at(split);
    let mut s = [[0.0f64; 4]; 2];
    for c in 0..chunks {
        let base = c * 4;
        let xc = &x4[base..base + 4];
        let x0 = xc[0] as f64;
        let x1 = xc[1] as f64;
        let x2 = xc[2] as f64;
        let x3 = xc[3] as f64;
        let c0 = &a04[base..base + 4];
        let c1 = &a14[base..base + 4];
        s[0][0] += c0[0] * x0;
        s[0][1] += c0[1] * x1;
        s[0][2] += c0[2] * x2;
        s[0][3] += c0[3] * x3;
        s[1][0] += c1[0] * x0;
        s[1][1] += c1[1] * x1;
        s[1][2] += c1[2] * x2;
        s[1][3] += c1[3] * x3;
    }
    for (i, &xv) in xr.iter().enumerate() {
        s[0][0] += a0r[i] * xv as f64;
        s[1][0] += a1r[i] * xv as f64;
    }
    (
        (s[0][0] + s[0][1]) + (s[0][2] + s[0][3]),
        (s[1][0] + s[1][1]) + (s[1][2] + s[1][3]),
    )
}

/// Row-panel matvec: `out[j] = a_j . x` where `a` is a row-major
/// `[out.len()][dim]` panel of `f64` projection rows and `x` is an `f32`
/// point. Rows are processed in pairs sharing each `x` load; per-row
/// results are bit-identical to [`dot_f64`].
///
/// # Contract
/// (debug-checked) `x.len() == dim` and `a.len() == out.len() * dim`.
#[inline]
pub fn matvec(a: &[f64], dim: usize, x: &[f32], out: &mut [f64]) {
    debug_assert_eq!(x.len(), dim, "point dimensionality mismatch");
    debug_assert_eq!(a.len(), out.len() * dim, "panel shape mismatch");
    let pairs = out.len() / 2;
    for p in 0..pairs {
        let j = p * 2;
        let (d0, d1) = dot2_f64(
            &a[j * dim..(j + 1) * dim],
            &a[(j + 1) * dim..(j + 2) * dim],
            x,
        );
        out[j] = d0;
        out[j + 1] = d1;
    }
    if out.len() % 2 == 1 {
        let j = out.len() - 1;
        out[j] = dot_f64(&a[j * dim..(j + 1) * dim], x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize, dim: usize) -> Vec<f32> {
        (0..n * dim)
            .map(|i| ((i * 37) % 101) as f32 * 0.13 - 5.0)
            .collect()
    }

    #[test]
    fn sq_dist_block_matches_scalar_bitwise() {
        for dim in [1usize, 3, 4, 5, 7, 8, 13, 24] {
            for n in 0..10usize {
                let flat = rows(n.max(1), dim);
                let q: Vec<f32> = (0..dim).map(|i| i as f32 * 0.7 - 1.0).collect();
                let ids: Vec<u32> = (0..n as u32).rev().collect();
                let mut out = vec![0.0f32; n];
                sq_dist_block(&q, &flat, dim, &ids, &mut out);
                for (j, &id) in ids.iter().enumerate() {
                    let want = sq_dist(&q, &flat[id as usize * dim..(id as usize + 1) * dim]);
                    assert_eq!(out[j].to_bits(), want.to_bits(), "dim={dim} n={n} j={j}");
                }
            }
        }
    }

    #[test]
    fn matvec_matches_dot_bitwise() {
        for dim in [1usize, 2, 4, 5, 9, 16, 31] {
            for m in 0..8usize {
                let a: Vec<f64> = (0..m * dim).map(|i| (i as f64 * 0.37).sin()).collect();
                let x: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.11).cos()).collect();
                let mut out = vec![0.0f64; m];
                matvec(&a, dim, &x, &mut out);
                for j in 0..m {
                    let want = dot_f64(&a[j * dim..(j + 1) * dim], &x);
                    assert_eq!(out[j].to_bits(), want.to_bits(), "dim={dim} m={m} j={j}");
                }
            }
        }
    }
}
