//! Blocked hot-path kernels: batched multi-point distance verification
//! and the row-panel matvec behind every query projection.
//!
//! Both kernels exist to organize memory traffic, not to change the math:
//!
//! * [`sq_dist_block`] verifies one query against a *batch* of dataset
//!   rows in one call. Callers sort the batch into memory order first
//!   (ascending row id), which turns the gather into a near-sequential
//!   sweep — on a locality-relabeled dataset the rows of one tree leaf
//!   are physically adjacent. Per row it runs the 4-way-unrolled scalar
//!   kernel: a 4-rows-fused variant (query chunk shared across four row
//!   streams, one accumulator bank per row) was benchmarked *slower*
//!   here — on the SSE2 baseline LLVM vectorizes the fusion across rows
//!   with six shuffles per chunk, while the scalar kernel's per-row
//!   4-lane pattern already saturates the FP units, and the out-of-order
//!   core overlaps consecutive rows' loads on its own (see the
//!   `verify/sq_dist_*` criterion group).
//! * [`matvec`] computes `out[j] = a_j . x` for a row-major panel of
//!   projection rows, two rows at a time sharing each `x` load — the
//!   query-side `G_i(q)` projection that every LSH method in this
//!   workspace pays per query.
//!
//! # Bitwise determinism
//!
//! Per-row results are **bit-identical** to the scalar kernels
//! ([`crate::dataset::sq_dist`] and a single-row dot): every lane uses
//! the same 4-way accumulator pattern over the same dimension order with
//! the same `(s0 + s1) + (s2 + s3)` reduction. A row's distance therefore
//! does not depend on its position inside a block or on the block
//! boundaries — which is what lets a locality-relabeled index return
//! byte-identical answers to an identity-order build (the relabel parity
//! property tests assert exactly this).
//!
//! # Runtime SIMD dispatch
//!
//! [`sq_dist_block`] and [`matvec`] dispatch once per process (cached in
//! an atomic, see [`simd_arch`]) to explicit-SIMD variants in the `x86`
//! / `neon` modules (each compiled only on its own arch). The exact-path
//! variants preserve bitwise parity
//! with the scalar reference by pinning the *same* 4-accumulator lane
//! layout and `(s0 + s1) + (s2 + s3)` reduction — one `__m128` (or
//! `float32x4_t`) *is* the four scalar accumulators, AVX2 fuses two rows
//! per iteration with an independent 128-bit bank per row, and the `f64`
//! projection dot uses one `__m256d` as its four lanes. **No FMA on the
//! exact path** — contracting `mul+add` would change results bit-for-bit.
//! The per-arch kernels are public precisely so the parity tests can
//! exercise every compiled variant against the scalar reference.

use crate::dataset::sq_dist;
use crate::sq8::{lower_bound_block, Sq8Query, Sq8Store};

/// The SIMD instruction set the runtime dispatcher selected for this
/// process. Exposed so benchmarks and tests can report / force-check the
/// active arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdArch {
    /// Portable scalar kernels (non-x86, non-aarch64 targets).
    Scalar,
    /// x86-64 baseline 128-bit arm.
    Sse2,
    /// x86-64 256-bit arm (detected at runtime).
    Avx2,
    /// AArch64 baseline 128-bit arm.
    Neon,
}

/// Detect (once; cached in an atomic) which SIMD arm the kernels use.
pub fn simd_arch() -> SimdArch {
    use std::sync::atomic::{AtomicU8, Ordering};
    static CACHE: AtomicU8 = AtomicU8::new(0);
    // order: idempotent detection cache — every thread that misses
    // computes the identical code, so racing writers are harmless and
    // the cell publishes nothing beyond its own value.
    match CACHE.load(Ordering::Relaxed) {
        1 => SimdArch::Scalar,
        2 => SimdArch::Sse2,
        3 => SimdArch::Avx2,
        4 => SimdArch::Neon,
        _ => {
            let arch = detect_simd_arch();
            let code = match arch {
                SimdArch::Scalar => 1,
                SimdArch::Sse2 => 2,
                SimdArch::Avx2 => 3,
                SimdArch::Neon => 4,
            };
            // order: publishing the same value every writer computes;
            // losing the race just repeats the cheap cpuid detection.
            CACHE.store(code, Ordering::Relaxed);
            arch
        }
    }
}

fn detect_simd_arch() -> SimdArch {
    #[cfg(target_arch = "x86_64")]
    {
        if is_x86_feature_detected!("avx2") {
            SimdArch::Avx2
        } else {
            SimdArch::Sse2
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        SimdArch::Neon
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    {
        SimdArch::Scalar
    }
}

/// Squared distances from `q` to the rows `ids` of the row-major matrix
/// `flat` (rows are `dim` wide), written into `out[j]` for `ids[j]`.
///
/// Every per-row result is **bit-identical** to [`sq_dist`]`(q, row)`
/// regardless of batch composition. Callers that sort `ids` ascending
/// turn the row gather into a monotone — on a relabeled store
/// near-sequential — memory sweep (see the module docs for why the
/// per-row path is the scalar kernel rather than a multi-row fusion).
///
/// # Contract
/// (debug-checked) `q.len() == dim`, `out.len() == ids.len()`, and every
/// id indexes a full row of `flat`.
#[inline]
pub fn sq_dist_block(q: &[f32], flat: &[f32], dim: usize, ids: &[u32], out: &mut [f32]) {
    debug_assert_eq!(q.len(), dim, "query dimensionality mismatch");
    debug_assert_eq!(out.len(), ids.len(), "output length mismatch");
    debug_assert!(
        ids.iter().all(|&id| (id as usize + 1) * dim <= flat.len()),
        "row id out of range"
    );
    match simd_arch() {
        #[cfg(target_arch = "x86_64")]
        SimdArch::Avx2 => x86::sq_dist_block_avx2(q, flat, dim, ids, out),
        #[cfg(target_arch = "x86_64")]
        SimdArch::Sse2 => x86::sq_dist_block_sse2(q, flat, dim, ids, out),
        #[cfg(target_arch = "aarch64")]
        SimdArch::Neon => neon::sq_dist_block_neon(q, flat, dim, ids, out),
        _ => sq_dist_block_scalar(q, flat, dim, ids, out),
    }
}

/// Portable scalar arm of [`sq_dist_block`]: the reference every SIMD
/// variant is parity-tested against.
pub fn sq_dist_block_scalar(q: &[f32], flat: &[f32], dim: usize, ids: &[u32], out: &mut [f32]) {
    for (o, &id) in out.iter_mut().zip(ids) {
        *o = sq_dist(q, &flat[id as usize * dim..id as usize * dim + dim]);
    }
}

/// The canonical blocked-verification staging shared by the DB-LSH core
/// and the baselines' `Verifier`: sort the fresh `block` of row ids into
/// memory order, compute their squared distances from `q` with
/// [`sq_dist_block`], and fill `keys` with the canonical consumption
/// keys — `(squared-distance bits << 32) | public id` — sorted ascending.
/// IEEE-754 bit order is value order for the non-negative squared
/// distances, so key order is ascending `(distance, public id)`; recover
/// the parts with [`key_parts`].
///
/// `to_public` maps a row id to the id embedded in the key: the DB-LSH
/// core passes its internal→external map, callers without an id
/// indirection pass the identity.
#[inline]
pub fn canonical_verify_keys(
    q: &[f32],
    flat: &[f32],
    dim: usize,
    block: &mut [u32],
    dists: &mut Vec<f32>,
    keys: &mut Vec<u64>,
    to_public: impl Fn(u32) -> u32,
) {
    block.sort_unstable();
    dists.resize(block.len(), 0.0);
    sq_dist_block(q, flat, dim, block, dists);
    keys.clear();
    for (&id, &d2) in block.iter().zip(dists.iter()) {
        keys.push(((d2.to_bits() as u64) << 32) | to_public(id) as u64);
    }
    keys.sort_unstable();
}

/// [`canonical_verify_keys`] with the SQ8 pre-filter in front: candidates
/// whose quantized lower bound exceeds `threshold` skip the exact kernel
/// entirely and contribute a key carrying the *bound's* bits instead of
/// an exact distance. Returns `(pruned, survivors)` candidate counts for
/// the `prefilter_pruned` / `prefilter_survivors` stats.
///
/// # Why consumers cannot tell the difference
///
/// Pruning uses strict `bound > threshold`, where `threshold` is the
/// current k-th best *exact squared distance* (`f32::INFINITY` until the
/// top is full, which disables pruning). Because the bound never exceeds
/// the row's exact distance, every pruned candidate is provably outside
/// the final top-k; and because the top only improves, any key that can
/// still update the top has exact bits `<= threshold` bits `<` every
/// pruned key's bound bits. The top-updating prefix of the sorted key
/// stream is therefore identical with the filter on or off; pruned keys
/// only permute the stream's *tail*, which count-based budget breaks and
/// top-driven radius breaks cannot observe. Canonical answers — and every
/// stats counter fed by key consumption — stay byte-identical.
///
/// Passing `threshold = f32::INFINITY` skips the bound scan (nothing can
/// be pruned) but still reports every candidate as a survivor.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn canonical_verify_keys_prefiltered(
    q: &[f32],
    flat: &[f32],
    dim: usize,
    store: &Sq8Store,
    prep: &Sq8Query,
    threshold: f32,
    block: &mut [u32],
    dists: &mut Vec<f32>,
    survivors: &mut Vec<u32>,
    keys: &mut Vec<u64>,
    to_public: impl Fn(u32) -> u32,
) -> (usize, usize) {
    block.sort_unstable();
    survivors.clear();
    keys.clear();
    if threshold == f32::INFINITY {
        survivors.extend_from_slice(block);
    } else {
        // Bound scan first (one SIMD-arm dispatch for the whole block, into
        // `dists` as scratch), then partition; `dists` is re-filled with the
        // survivors' exact distances below. Each survivor's `f32` row is
        // prefetched as soon as it survives, so by the time the exact kernel
        // runs, its scattered cache lines are already in flight.
        lower_bound_block(prep, store, block, dists);
        for (&id, &bound) in block.iter().zip(dists.iter()) {
            if bound > threshold {
                keys.push(((bound.to_bits() as u64) << 32) | to_public(id) as u64);
            } else {
                prefetch_row(flat, dim, id);
                survivors.push(id);
            }
        }
    }
    let pruned = block.len() - survivors.len();
    dists.resize(survivors.len(), 0.0);
    sq_dist_block(q, flat, dim, survivors, dists);
    for (&id, &d2) in survivors.iter().zip(dists.iter()) {
        keys.push(((d2.to_bits() as u64) << 32) | to_public(id) as u64);
    }
    keys.sort_unstable();
    (pruned, survivors.len())
}

/// Nanosecond attribution of one traced verification call, split at the
/// boundary the fused kernel hides: the SQ8 bound scan and partition
/// (`prefilter_nanos`) versus the exact blocked distance kernel plus key
/// build and sort (`verify_nanos`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifySplit {
    /// Time in the quantized lower-bound scan and survivor partition.
    pub prefilter_nanos: u64,
    /// Time in the exact distance kernel, key build, and key sort.
    pub verify_nanos: u64,
}

/// [`canonical_verify_keys_prefiltered`] with per-stage timing: adds the
/// prefilter/verify nanosecond split into `split`. Identical results —
/// the body mirrors the untraced kernel statement for statement, with
/// two timestamps added (a traced-vs-untraced parity test pins this).
/// Kept separate so the untraced hot path pays zero clock reads.
#[allow(clippy::too_many_arguments)]
pub fn canonical_verify_keys_prefiltered_traced(
    q: &[f32],
    flat: &[f32],
    dim: usize,
    store: &Sq8Store,
    prep: &Sq8Query,
    threshold: f32,
    block: &mut [u32],
    dists: &mut Vec<f32>,
    survivors: &mut Vec<u32>,
    keys: &mut Vec<u64>,
    to_public: impl Fn(u32) -> u32,
    split: &mut VerifySplit,
) -> (usize, usize) {
    let start = std::time::Instant::now();
    block.sort_unstable();
    survivors.clear();
    keys.clear();
    if threshold == f32::INFINITY {
        survivors.extend_from_slice(block);
    } else {
        lower_bound_block(prep, store, block, dists);
        for (&id, &bound) in block.iter().zip(dists.iter()) {
            if bound > threshold {
                keys.push(((bound.to_bits() as u64) << 32) | to_public(id) as u64);
            } else {
                prefetch_row(flat, dim, id);
                survivors.push(id);
            }
        }
    }
    let pruned = block.len() - survivors.len();
    let partitioned = std::time::Instant::now();
    split.prefilter_nanos += partitioned.duration_since(start).as_nanos() as u64;
    dists.resize(survivors.len(), 0.0);
    sq_dist_block(q, flat, dim, survivors, dists);
    for (&id, &d2) in survivors.iter().zip(dists.iter()) {
        keys.push(((d2.to_bits() as u64) << 32) | to_public(id) as u64);
    }
    keys.sort_unstable();
    split.verify_nanos += partitioned.elapsed().as_nanos() as u64;
    (pruned, survivors.len())
}

/// Best-effort prefetch of row `id`'s `f32` coordinates toward L1. The
/// pre-filter partition issues one of these per survivor, overlapping the
/// scattered row loads with the rest of the bound partition so the exact
/// kernel doesn't stall on them. No-op on targets without a stable
/// prefetch intrinsic; never affects results, only cache state.
#[inline(always)]
fn prefetch_row(flat: &[f32], dim: usize, id: u32) {
    #[cfg(target_arch = "x86_64")]
    {
        let base = id as usize * dim;
        if base + dim <= flat.len() {
            let p = flat[base..].as_ptr() as *const i8;
            let bytes = dim * std::mem::size_of::<f32>();
            let mut off = 0;
            while off < bytes {
                // SAFETY: prefetch only touches cache state and the pointer
                // stays within `flat`'s allocation.
                unsafe {
                    std::arch::x86_64::_mm_prefetch(p.add(off), std::arch::x86_64::_MM_HINT_T0)
                };
                off += 64;
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (flat, dim, id);
    }
}

/// Split a key produced by [`canonical_verify_keys`] back into
/// `(public id, exact distance)`.
#[inline]
pub fn key_parts(key: u64) -> (u32, f64) {
    let d2 = f32::from_bits((key >> 32) as u32) as f64;
    (key as u32, d2.sqrt())
}

/// Dot product of one `f64` projection row with an `f32` point,
/// accumulated in `f64` with the shared 4-way unroll. The single-row
/// lane of [`matvec`]; kept public for callers projecting one row.
#[inline]
pub fn dot_f64(a: &[f64], x: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), x.len());
    let chunks = a.len() / 4;
    let (a4, ar) = a.split_at(chunks * 4);
    let (x4, xr) = x.split_at(chunks * 4);
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    for (ca, cx) in a4.chunks_exact(4).zip(x4.chunks_exact(4)) {
        s0 += ca[0] * cx[0] as f64;
        s1 += ca[1] * cx[1] as f64;
        s2 += ca[2] * cx[2] as f64;
        s3 += ca[3] * cx[3] as f64;
    }
    for (va, vx) in ar.iter().zip(xr) {
        s0 += va * *vx as f64;
    }
    (s0 + s1) + (s2 + s3)
}

/// Two rows of [`matvec`] at once, sharing each `x` load. Per-row
/// accumulation is bit-identical to [`dot_f64`].
#[inline]
fn dot2_f64(a0: &[f64], a1: &[f64], x: &[f32]) -> (f64, f64) {
    debug_assert!(a0.len() == x.len() && a1.len() == x.len());
    let chunks = x.len() / 4;
    let split = chunks * 4;
    let (a04, a0r) = a0.split_at(split);
    let (a14, a1r) = a1.split_at(split);
    let (x4, xr) = x.split_at(split);
    let mut s = [[0.0f64; 4]; 2];
    for c in 0..chunks {
        let base = c * 4;
        let xc = &x4[base..base + 4];
        let x0 = xc[0] as f64;
        let x1 = xc[1] as f64;
        let x2 = xc[2] as f64;
        let x3 = xc[3] as f64;
        let c0 = &a04[base..base + 4];
        let c1 = &a14[base..base + 4];
        s[0][0] += c0[0] * x0;
        s[0][1] += c0[1] * x1;
        s[0][2] += c0[2] * x2;
        s[0][3] += c0[3] * x3;
        s[1][0] += c1[0] * x0;
        s[1][1] += c1[1] * x1;
        s[1][2] += c1[2] * x2;
        s[1][3] += c1[3] * x3;
    }
    for (i, &xv) in xr.iter().enumerate() {
        s[0][0] += a0r[i] * xv as f64;
        s[1][0] += a1r[i] * xv as f64;
    }
    (
        (s[0][0] + s[0][1]) + (s[0][2] + s[0][3]),
        (s[1][0] + s[1][1]) + (s[1][2] + s[1][3]),
    )
}

/// Row-panel matvec: `out[j] = a_j . x` where `a` is a row-major
/// `[out.len()][dim]` panel of `f64` projection rows and `x` is an `f32`
/// point. Rows are processed in pairs sharing each `x` load; per-row
/// results are bit-identical to [`dot_f64`].
///
/// # Contract
/// (debug-checked) `x.len() == dim` and `a.len() == out.len() * dim`.
#[inline]
pub fn matvec(a: &[f64], dim: usize, x: &[f32], out: &mut [f64]) {
    debug_assert_eq!(x.len(), dim, "point dimensionality mismatch");
    debug_assert_eq!(a.len(), out.len() * dim, "panel shape mismatch");
    match simd_arch() {
        #[cfg(target_arch = "x86_64")]
        SimdArch::Avx2 => x86::matvec_avx2(a, dim, x, out),
        // SSE2's two f64 lanes cannot host the 4-lane bank without
        // splitting it; the scalar kernel already saturates the FP units
        // there, so only AVX2 gets an explicit f64 arm.
        _ => matvec_scalar(a, dim, x, out),
    }
}

/// Portable scalar arm of [`matvec`]: the reference every SIMD variant is
/// parity-tested against.
pub fn matvec_scalar(a: &[f64], dim: usize, x: &[f32], out: &mut [f64]) {
    let pairs = out.len() / 2;
    for p in 0..pairs {
        let j = p * 2;
        let (d0, d1) = dot2_f64(
            &a[j * dim..(j + 1) * dim],
            &a[(j + 1) * dim..(j + 2) * dim],
            x,
        );
        out[j] = d0;
        out[j + 1] = d1;
    }
    if out.len() % 2 == 1 {
        let j = out.len() - 1;
        out[j] = dot_f64(&a[j * dim..(j + 1) * dim], x);
    }
}

/// x86-64 explicit-SIMD arms of the exact kernels. Public so the parity
/// tests can exercise every compiled variant against the scalar
/// reference; production code reaches them through [`sq_dist_block`] /
/// [`matvec`] dispatch.
#[cfg(target_arch = "x86_64")]
pub mod x86 {
    use std::arch::x86_64::*;

    /// SSE2 arm of [`crate::dataset::sq_dist`]: one `__m128` *is* the
    /// scalar kernel's four accumulators, so the result is bit-identical.
    pub fn sq_dist_sse2(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY: SSE2 is part of the x86_64 baseline; all loads stay
        // within the equal-length slices checked above.
        unsafe { sq_dist_sse2_impl(a, b) }
    }

    /// # Safety
    /// The caller must guarantee SSE2 is available (part of the x86_64
    /// baseline) and that `a.len() == b.len()` — every vector load reads
    /// 4 lanes inside the common prefix, the tail is scalar-indexed.
    #[target_feature(enable = "sse2")]
    unsafe fn sq_dist_sse2_impl(a: &[f32], b: &[f32]) -> f32 {
        let dim = a.len();
        let chunks = dim / 4;
        let split = chunks * 4;
        let mut bank = _mm_setzero_ps();
        for c in 0..chunks {
            let base = c * 4;
            let av = _mm_loadu_ps(a.as_ptr().add(base));
            let bv = _mm_loadu_ps(b.as_ptr().add(base));
            let d = _mm_sub_ps(av, bv);
            bank = _mm_add_ps(bank, _mm_mul_ps(d, d));
        }
        let mut s = [0.0f32; 4];
        _mm_storeu_ps(s.as_mut_ptr(), bank);
        for i in split..dim {
            let d = a[i] - b[i];
            s[0] += d * d;
        }
        (s[0] + s[1]) + (s[2] + s[3])
    }

    /// SSE2 arm of [`super::sq_dist_block`].
    pub fn sq_dist_block_sse2(q: &[f32], flat: &[f32], dim: usize, ids: &[u32], out: &mut [f32]) {
        for (o, &id) in out.iter_mut().zip(ids) {
            *o = sq_dist_sse2(q, &flat[id as usize * dim..id as usize * dim + dim]);
        }
    }

    /// AVX2 arm of [`super::sq_dist_block`]: two rows per iteration, each
    /// row owning one 128-bit half of a `__m256` as its private 4-lane
    /// accumulator bank — per-row arithmetic is exactly the scalar
    /// kernel's, so results stay bit-identical. No FMA.
    ///
    /// # Panics
    /// Panics if AVX2 is not available at runtime.
    pub fn sq_dist_block_avx2(q: &[f32], flat: &[f32], dim: usize, ids: &[u32], out: &mut [f32]) {
        assert!(
            is_x86_feature_detected!("avx2"),
            "sq_dist_block_avx2 requires AVX2"
        );
        // SAFETY: AVX2 availability was just asserted; the dispatcher's
        // debug contract guarantees every id indexes a full row.
        unsafe { sq_dist_block_avx2_impl(q, flat, dim, ids, out) }
    }

    /// # Safety
    /// The caller must guarantee AVX2 is available and the dispatcher
    /// contract holds: `q.len() == dim`, `out.len() == ids.len()`, and
    /// every id indexes a full `dim`-wide row of `flat` — the row slices
    /// taken below bounds-check against that shape.
    #[target_feature(enable = "avx2")]
    unsafe fn sq_dist_block_avx2_impl(
        q: &[f32],
        flat: &[f32],
        dim: usize,
        ids: &[u32],
        out: &mut [f32],
    ) {
        let pairs = ids.len() / 2;
        for p in 0..pairs {
            let j = p * 2;
            let r0 = &flat[ids[j] as usize * dim..ids[j] as usize * dim + dim];
            let r1 = &flat[ids[j + 1] as usize * dim..ids[j + 1] as usize * dim + dim];
            let (d0, d1) = sq_dist2_avx2(q, r0, r1);
            out[j] = d0;
            out[j + 1] = d1;
        }
        if ids.len() % 2 == 1 {
            let j = ids.len() - 1;
            out[j] =
                sq_dist_sse2_impl(q, &flat[ids[j] as usize * dim..ids[j] as usize * dim + dim]);
        }
    }

    /// # Safety
    /// The caller must guarantee AVX2 is available and that `r0` and
    /// `r1` are at least `q.len()` long — every 4-lane load stays inside
    /// `q.len()` rounded down to a multiple of 4, the tail is indexed.
    #[target_feature(enable = "avx2")]
    unsafe fn sq_dist2_avx2(q: &[f32], r0: &[f32], r1: &[f32]) -> (f32, f32) {
        let dim = q.len();
        let chunks = dim / 4;
        let split = chunks * 4;
        let mut bank = _mm256_setzero_ps();
        for c in 0..chunks {
            let base = c * 4;
            let qv = _mm_loadu_ps(q.as_ptr().add(base));
            let qq = _mm256_set_m128(qv, qv);
            let rv = _mm256_set_m128(
                _mm_loadu_ps(r1.as_ptr().add(base)),
                _mm_loadu_ps(r0.as_ptr().add(base)),
            );
            let d = _mm256_sub_ps(qq, rv);
            bank = _mm256_add_ps(bank, _mm256_mul_ps(d, d));
        }
        let mut s = [0.0f32; 8];
        _mm256_storeu_ps(s.as_mut_ptr(), bank);
        for i in split..dim {
            let d0 = q[i] - r0[i];
            s[0] += d0 * d0;
            let d1 = q[i] - r1[i];
            s[4] += d1 * d1;
        }
        ((s[0] + s[1]) + (s[2] + s[3]), (s[4] + s[5]) + (s[6] + s[7]))
    }

    /// AVX2 arm of [`super::dot_f64`]: one `__m256d` holds the scalar
    /// kernel's four `f64` accumulators. No FMA — parity requires
    /// separate multiply and add.
    ///
    /// # Panics
    /// Panics if AVX2 is not available at runtime.
    pub fn dot_f64_avx2(a: &[f64], x: &[f32]) -> f64 {
        debug_assert_eq!(a.len(), x.len());
        assert!(
            is_x86_feature_detected!("avx2"),
            "dot_f64_avx2 requires AVX2"
        );
        // SAFETY: AVX2 availability was just asserted; all loads stay
        // within the equal-length slices checked above.
        unsafe { dot_f64_avx2_impl(a, x) }
    }

    /// # Safety
    /// The caller must guarantee AVX2 is available and that
    /// `a.len() == x.len()` — the 4-lane loads walk the common prefix,
    /// the remainder is scalar-indexed.
    #[target_feature(enable = "avx2")]
    unsafe fn dot_f64_avx2_impl(a: &[f64], x: &[f32]) -> f64 {
        let dim = a.len();
        let chunks = dim / 4;
        let split = chunks * 4;
        let mut bank = _mm256_setzero_pd();
        for c in 0..chunks {
            let base = c * 4;
            let av = _mm256_loadu_pd(a.as_ptr().add(base));
            let xv = _mm256_cvtps_pd(_mm_loadu_ps(x.as_ptr().add(base)));
            bank = _mm256_add_pd(bank, _mm256_mul_pd(av, xv));
        }
        let mut s = [0.0f64; 4];
        _mm256_storeu_pd(s.as_mut_ptr(), bank);
        for i in split..dim {
            s[0] += a[i] * x[i] as f64;
        }
        (s[0] + s[1]) + (s[2] + s[3])
    }

    /// # Safety
    /// The caller must guarantee AVX2 is available and that `a0` and
    /// `a1` are at least `x.len()` long — all 4-lane loads stay inside
    /// `x.len()` rounded down to a multiple of 4, the tail is indexed.
    #[target_feature(enable = "avx2")]
    unsafe fn dot2_f64_avx2(a0: &[f64], a1: &[f64], x: &[f32]) -> (f64, f64) {
        let dim = x.len();
        let chunks = dim / 4;
        let split = chunks * 4;
        let mut b0 = _mm256_setzero_pd();
        let mut b1 = _mm256_setzero_pd();
        for c in 0..chunks {
            let base = c * 4;
            let xv = _mm256_cvtps_pd(_mm_loadu_ps(x.as_ptr().add(base)));
            let a0v = _mm256_loadu_pd(a0.as_ptr().add(base));
            let a1v = _mm256_loadu_pd(a1.as_ptr().add(base));
            b0 = _mm256_add_pd(b0, _mm256_mul_pd(a0v, xv));
            b1 = _mm256_add_pd(b1, _mm256_mul_pd(a1v, xv));
        }
        let mut s0 = [0.0f64; 4];
        let mut s1 = [0.0f64; 4];
        _mm256_storeu_pd(s0.as_mut_ptr(), b0);
        _mm256_storeu_pd(s1.as_mut_ptr(), b1);
        for i in split..dim {
            let xv = x[i] as f64;
            s0[0] += a0[i] * xv;
            s1[0] += a1[i] * xv;
        }
        (
            (s0[0] + s0[1]) + (s0[2] + s0[3]),
            (s1[0] + s1[1]) + (s1[2] + s1[3]),
        )
    }

    /// AVX2 arm of [`super::matvec`]: row pairs share each converted `x`
    /// load; per-row accumulation is bit-identical to [`super::dot_f64`].
    ///
    /// # Panics
    /// Panics if AVX2 is not available at runtime.
    pub fn matvec_avx2(a: &[f64], dim: usize, x: &[f32], out: &mut [f64]) {
        assert!(
            is_x86_feature_detected!("avx2"),
            "matvec_avx2 requires AVX2"
        );
        // SAFETY: AVX2 availability was just asserted; the dispatcher's
        // debug contract guarantees the panel shape.
        unsafe { matvec_avx2_impl(a, dim, x, out) }
    }

    /// # Safety
    /// The caller must guarantee AVX2 is available and the dispatcher
    /// contract holds: `x.len() == dim` and `a.len() == out.len() * dim`
    /// — the per-row slices taken below bounds-check against that panel.
    #[target_feature(enable = "avx2")]
    unsafe fn matvec_avx2_impl(a: &[f64], dim: usize, x: &[f32], out: &mut [f64]) {
        let pairs = out.len() / 2;
        for p in 0..pairs {
            let j = p * 2;
            let (d0, d1) = dot2_f64_avx2(
                &a[j * dim..(j + 1) * dim],
                &a[(j + 1) * dim..(j + 2) * dim],
                x,
            );
            out[j] = d0;
            out[j + 1] = d1;
        }
        if out.len() % 2 == 1 {
            let j = out.len() - 1;
            out[j] = dot_f64_avx2_impl(&a[j * dim..(j + 1) * dim], x);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::super::sq_dist;
        use super::*;

        #[test]
        fn sse2_sq_dist_matches_scalar_bitwise() {
            for dim in [1usize, 3, 4, 5, 7, 8, 13, 24, 129] {
                let a: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.7).sin() * 3.0).collect();
                let b: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.3).cos() * 2.0).collect();
                assert_eq!(
                    sq_dist_sse2(&a, &b).to_bits(),
                    sq_dist(&a, &b).to_bits(),
                    "dim={dim}"
                );
            }
        }
    }
}

/// AArch64 NEON arms of the exact kernels. `f32` distances only — the
/// `f64` projection dot keeps its scalar form here (NEON's two `f64`
/// lanes cannot host the 4-lane bank without splitting it).
#[cfg(target_arch = "aarch64")]
pub mod neon {
    use std::arch::aarch64::*;

    /// NEON arm of [`crate::dataset::sq_dist`]: one `float32x4_t` *is*
    /// the scalar kernel's four accumulators, so the result is
    /// bit-identical.
    pub fn sq_dist_neon(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY: NEON is part of the aarch64 baseline; all loads stay
        // within the equal-length slices checked above.
        unsafe { sq_dist_neon_impl(a, b) }
    }

    /// # Safety
    /// The caller must guarantee NEON is available (part of the aarch64
    /// baseline) and that `a.len() == b.len()` — every vector load reads
    /// 4 lanes inside the common prefix, the tail is scalar-indexed.
    #[target_feature(enable = "neon")]
    unsafe fn sq_dist_neon_impl(a: &[f32], b: &[f32]) -> f32 {
        let dim = a.len();
        let chunks = dim / 4;
        let split = chunks * 4;
        let mut bank = vdupq_n_f32(0.0);
        for c in 0..chunks {
            let base = c * 4;
            let av = vld1q_f32(a.as_ptr().add(base));
            let bv = vld1q_f32(b.as_ptr().add(base));
            let d = vsubq_f32(av, bv);
            bank = vaddq_f32(bank, vmulq_f32(d, d));
        }
        let mut s = [0.0f32; 4];
        vst1q_f32(s.as_mut_ptr(), bank);
        for i in split..dim {
            let d = a[i] - b[i];
            s[0] += d * d;
        }
        (s[0] + s[1]) + (s[2] + s[3])
    }

    /// NEON arm of [`super::sq_dist_block`].
    pub fn sq_dist_block_neon(q: &[f32], flat: &[f32], dim: usize, ids: &[u32], out: &mut [f32]) {
        for (o, &id) in out.iter_mut().zip(ids) {
            *o = sq_dist_neon(q, &flat[id as usize * dim..id as usize * dim + dim]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(n: usize, dim: usize) -> Vec<f32> {
        (0..n * dim)
            .map(|i| ((i * 37) % 101) as f32 * 0.13 - 5.0)
            .collect()
    }

    #[test]
    fn sq_dist_block_matches_scalar_bitwise() {
        for dim in [1usize, 3, 4, 5, 7, 8, 13, 24] {
            for n in 0..10usize {
                let flat = rows(n.max(1), dim);
                let q: Vec<f32> = (0..dim).map(|i| i as f32 * 0.7 - 1.0).collect();
                let ids: Vec<u32> = (0..n as u32).rev().collect();
                let mut out = vec![0.0f32; n];
                sq_dist_block(&q, &flat, dim, &ids, &mut out);
                for (j, &id) in ids.iter().enumerate() {
                    let want = sq_dist(&q, &flat[id as usize * dim..(id as usize + 1) * dim]);
                    assert_eq!(out[j].to_bits(), want.to_bits(), "dim={dim} n={n} j={j}");
                }
            }
        }
    }

    #[test]
    fn traced_prefiltered_kernel_matches_untraced_bitwise() {
        let dim = 8usize;
        let n = 40usize;
        let flat = rows(n, dim);
        let q: Vec<f32> = (0..dim).map(|i| i as f32 * 0.9 - 2.0).collect();
        let store = Sq8Store::learn_and_build(dim, &flat);
        let mut prep = Sq8Query::empty();
        store.prepare_query(&q, &mut prep);
        for threshold in [f32::INFINITY, 150.0f32, 0.0] {
            let ids: Vec<u32> = (0..n as u32).rev().collect();
            let mut block_a = ids.clone();
            let mut block_b = ids.clone();
            let (mut da, mut sa, mut ka) = (Vec::new(), Vec::new(), Vec::new());
            let (mut db, mut sb, mut kb) = (Vec::new(), Vec::new(), Vec::new());
            let counts_a = canonical_verify_keys_prefiltered(
                &q,
                &flat,
                dim,
                &store,
                &prep,
                threshold,
                &mut block_a,
                &mut da,
                &mut sa,
                &mut ka,
                |id| id,
            );
            let mut split = VerifySplit::default();
            let counts_b = canonical_verify_keys_prefiltered_traced(
                &q,
                &flat,
                dim,
                &store,
                &prep,
                threshold,
                &mut block_b,
                &mut db,
                &mut sb,
                &mut kb,
                |id| id,
                &mut split,
            );
            assert_eq!(counts_a, counts_b, "threshold={threshold}");
            assert_eq!(ka, kb, "keys must be byte-identical, threshold={threshold}");
            assert_eq!(sa, sb, "survivors must match, threshold={threshold}");
        }
    }

    #[test]
    fn matvec_matches_dot_bitwise() {
        for dim in [1usize, 2, 4, 5, 9, 16, 31] {
            for m in 0..8usize {
                let a: Vec<f64> = (0..m * dim).map(|i| (i as f64 * 0.37).sin()).collect();
                let x: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.11).cos()).collect();
                let mut out = vec![0.0f64; m];
                matvec(&a, dim, &x, &mut out);
                for j in 0..m {
                    let want = dot_f64(&a[j * dim..(j + 1) * dim], &x);
                    assert_eq!(out[j].to_bits(), want.to_bits(), "dim={dim} m={m} j={j}");
                }
            }
        }
    }
}
