//! Flat row-major point matrix plus distance kernels.

use crate::error::DbLshError;

/// A dataset of `n` points in `d`-dimensional Euclidean space, stored as a
/// contiguous row-major `f32` matrix (the layout of fvecs files and of
/// every ANN benchmark suite).
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    dim: usize,
    data: Vec<f32>,
}

impl Dataset {
    /// Wrap an existing flat buffer. `data.len()` must be a multiple of
    /// `dim` (or empty), and every coordinate must be finite.
    pub fn try_from_flat(dim: usize, data: Vec<f32>) -> Result<Self, DbLshError> {
        if dim == 0 {
            return Err(DbLshError::invalid("dim", "must be at least 1"));
        }
        if !data.len().is_multiple_of(dim) {
            return Err(DbLshError::invalid(
                "data",
                format!(
                    "flat buffer length {} is not a multiple of dim {}",
                    data.len(),
                    dim
                ),
            ));
        }
        if !data.iter().all(|v| v.is_finite()) {
            return Err(DbLshError::NonFiniteCoordinate);
        }
        Ok(Dataset { dim, data })
    }

    /// Panicking convenience form of [`Dataset::try_from_flat`], for tests
    /// and generators whose inputs are correct by construction.
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        match Dataset::try_from_flat(dim, data) {
            Ok(d) => d,
            Err(DbLshError::NonFiniteCoordinate) => panic!("non-finite coordinate rejected"), // lint: allow(panic-free-surface) — the panic is this convenience form's documented contract; try_from_flat is the fallible twin
            Err(DbLshError::InvalidParameter { reason, .. }) => {
                panic!("{reason}") // lint: allow(panic-free-surface) — documented panicking contract; try_from_flat is the fallible twin
            }
            Err(e) => panic!("{e}"), // lint: allow(panic-free-surface) — documented panicking contract; try_from_flat is the fallible twin
        }
    }

    /// Build from individual rows. All rows must share one length, and at
    /// least one row is required (use [`Dataset::empty`] otherwise — a
    /// zero-row set carries no dimensionality).
    pub fn try_from_rows(rows: &[Vec<f32>]) -> Result<Self, DbLshError> {
        let Some(first) = rows.first() else {
            return Err(DbLshError::EmptyDataset);
        };
        let dim = first.len();
        let mut data = Vec::with_capacity(rows.len() * dim);
        for r in rows {
            if r.len() != dim {
                return Err(DbLshError::DimensionMismatch {
                    expected: dim,
                    got: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Dataset::try_from_flat(dim, data)
    }

    /// Panicking convenience form of [`Dataset::try_from_rows`] (mainly
    /// for tests and examples).
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        match Dataset::try_from_rows(rows) {
            Ok(d) => d,
            Err(DbLshError::EmptyDataset) => {
                panic!("empty row set; use from_flat for empty") // lint: allow(panic-free-surface) — documented panicking contract; try_from_rows is the fallible twin
            }
            Err(DbLshError::DimensionMismatch { .. }) => panic!("ragged rows"), // lint: allow(panic-free-surface) — documented panicking contract; try_from_rows is the fallible twin
            Err(DbLshError::NonFiniteCoordinate) => panic!("non-finite coordinate rejected"), // lint: allow(panic-free-surface) — documented panicking contract; try_from_rows is the fallible twin
            Err(e) => panic!("{e}"), // lint: allow(panic-free-surface) — documented panicking contract; try_from_rows is the fallible twin
        }
    }

    /// Empty dataset of the given dimensionality.
    pub fn empty(dim: usize) -> Self {
        Dataset::from_flat(dim, Vec::new())
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Point dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Borrow point `i`.
    #[inline]
    pub fn point(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// The whole flat buffer.
    #[inline]
    pub fn flat(&self) -> &[f32] {
        &self.data
    }

    /// Append one point, validating dimensionality and finiteness.
    pub fn try_push(&mut self, point: &[f32]) -> Result<(), DbLshError> {
        if point.len() != self.dim {
            return Err(DbLshError::DimensionMismatch {
                expected: self.dim,
                got: point.len(),
            });
        }
        if !point.iter().all(|v| v.is_finite()) {
            return Err(DbLshError::NonFiniteCoordinate);
        }
        self.data.extend_from_slice(point);
        Ok(())
    }

    /// Panicking convenience form of [`Dataset::try_push`].
    pub fn push(&mut self, point: &[f32]) {
        match self.try_push(point) {
            Ok(()) => {}
            Err(DbLshError::DimensionMismatch { .. }) => panic!("dimensionality mismatch"), // lint: allow(panic-free-surface) — documented panicking contract; try_push is the fallible twin
            Err(DbLshError::NonFiniteCoordinate) => panic!("non-finite coordinate rejected"), // lint: allow(panic-free-surface) — documented panicking contract; try_push is the fallible twin
            Err(e) => panic!("{e}"), // lint: allow(panic-free-surface) — documented panicking contract; try_push is the fallible twin
        }
    }

    /// A copy of this dataset with rows physically rearranged: row `i` of
    /// the result is row `order[i]` of `self`. Values are copied from an
    /// already-validated dataset, so no finiteness re-check is paid.
    ///
    /// This is the data-layout half of locality-aware id relabeling: the
    /// DB-LSH core computes a locality-preserving permutation of its
    /// points at bulk build and reorders the backing rows so that
    /// candidate verification reads near-sequential memory.
    ///
    /// # Contract
    /// (debug-checked) `order` is a permutation of `0..self.len()`.
    pub fn reordered(&self, order: &[u32]) -> Dataset {
        debug_assert_eq!(order.len(), self.len(), "order length mismatch");
        debug_assert!(
            {
                let mut seen = vec![false; self.len()];
                order.iter().all(|&r| {
                    (r as usize) < seen.len() && !std::mem::replace(&mut seen[r as usize], true)
                })
            },
            "order is not a permutation of the row indexes"
        );
        let dim = self.dim;
        let mut data = Vec::with_capacity(order.len() * dim);
        for &r in order {
            data.extend_from_slice(self.point(r as usize));
        }
        Dataset { dim, data }
    }

    /// Squared distances from `q` to the rows `ids`, written into
    /// `out[j]` for `ids[j]` — the fused verification kernel
    /// ([`crate::kernels::sq_dist_block`]) over this dataset's flat
    /// buffer. Per-row results are bit-identical to [`sq_dist`].
    ///
    /// # Contract
    /// (debug-checked) `q.len() == self.dim()`, `out.len() == ids.len()`,
    /// every id is a valid row.
    #[inline]
    pub fn sq_dists(&self, q: &[f32], ids: &[u32], out: &mut [f32]) {
        crate::kernels::sq_dist_block(q, &self.data, self.dim, ids, out);
    }

    /// Remove the rows in `sorted_rows` (ascending, unique) and return them
    /// as a new dataset — how the paper carves queries out of each corpus
    /// ("we randomly select 100 points as queries and remove them from the
    /// datasets").
    pub fn extract_rows(&mut self, sorted_rows: &[usize]) -> Dataset {
        let mut extracted = Vec::with_capacity(sorted_rows.len() * self.dim);
        for w in sorted_rows.windows(2) {
            assert!(w[0] < w[1], "rows must be ascending and unique");
        }
        for &r in sorted_rows {
            assert!(r < self.len(), "row {r} out of bounds");
            extracted.extend_from_slice(self.point(r));
        }
        // compact in one pass, skipping extracted rows
        let dim = self.dim;
        let mut keep = Vec::with_capacity(self.data.len() - extracted.len());
        let mut it = sorted_rows.iter().peekable();
        for row in 0..self.len() {
            if it.peek() == Some(&&row) {
                it.next();
            } else {
                keep.extend_from_slice(&self.data[row * dim..(row + 1) * dim]);
            }
        }
        self.data = keep;
        Dataset::from_flat(dim, extracted)
    }
}

/// Squared Euclidean distance with 4-way unrolling; the single hottest
/// kernel in every verification loop, so it avoids bounds checks via
/// exact-chunk iteration.
#[inline]
pub fn sq_dist(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc0 = 0.0f32;
    let mut acc1 = 0.0f32;
    let mut acc2 = 0.0f32;
    let mut acc3 = 0.0f32;
    let chunks = a.len() / 4;
    let (a4, a_rest) = a.split_at(chunks * 4);
    let (b4, b_rest) = b.split_at(chunks * 4);
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        let d0 = ca[0] - cb[0];
        let d1 = ca[1] - cb[1];
        let d2 = ca[2] - cb[2];
        let d3 = ca[3] - cb[3];
        acc0 += d0 * d0;
        acc1 += d1 * d1;
        acc2 += d2 * d2;
        acc3 += d3 * d3;
    }
    for (x, y) in a_rest.iter().zip(b_rest) {
        let d = x - y;
        acc0 += d * d;
    }
    (acc0 + acc1) + (acc2 + acc3)
}

/// Euclidean distance.
#[inline]
pub fn dist(a: &[f32], b: &[f32]) -> f32 {
    sq_dist(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_accessors() {
        let d = Dataset::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.point(1), &[3.0, 4.0]);
        assert_eq!(d.flat().len(), 6);
    }

    #[test]
    fn push_extends() {
        let mut d = Dataset::empty(3);
        assert!(d.is_empty());
        d.push(&[1.0, 2.0, 3.0]);
        d.push(&[4.0, 5.0, 6.0]);
        assert_eq!(d.len(), 2);
        assert_eq!(d.point(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn extract_rows_splits_dataset() {
        let mut d = Dataset::from_rows(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0], vec![4.0]]);
        let q = d.extract_rows(&[1, 3]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.point(0), &[1.0]);
        assert_eq!(q.point(1), &[3.0]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.point(0), &[0.0]);
        assert_eq!(d.point(1), &[2.0]);
        assert_eq!(d.point(2), &[4.0]);
    }

    #[test]
    fn sq_dist_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.3).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32 * 0.7).collect();
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| (x - y) * (x - y)).sum();
        assert!((sq_dist(&a, &b) - naive).abs() < 1e-3);
        assert_eq!(sq_dist(&a, &a), 0.0);
        assert!((dist(&a, &b) - naive.sqrt()).abs() < 1e-3);
    }

    #[test]
    fn sq_dist_various_lengths() {
        for len in [1, 2, 3, 4, 5, 7, 8, 9, 16, 17] {
            let a = vec![1.0f32; len];
            let b = vec![3.0f32; len];
            assert_eq!(sq_dist(&a, &b), 4.0 * len as f32, "len={len}");
        }
    }

    #[test]
    fn reordered_permutes_rows() {
        let d = Dataset::from_rows(&[vec![0.0, 1.0], vec![2.0, 3.0], vec![4.0, 5.0]]);
        let r = d.reordered(&[2, 0, 1]);
        assert_eq!(r.point(0), &[4.0, 5.0]);
        assert_eq!(r.point(1), &[0.0, 1.0]);
        assert_eq!(r.point(2), &[2.0, 3.0]);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn sq_dists_matches_scalar() {
        let d = Dataset::from_rows(&[vec![0.0, 0.0], vec![1.0, 2.0], vec![3.0, 4.0]]);
        let q = [1.0f32, 1.0];
        let ids = [2u32, 0, 1];
        let mut out = [0.0f32; 3];
        d.sq_dists(&q, &ids, &mut out);
        for (j, &id) in ids.iter().enumerate() {
            assert_eq!(out[j], sq_dist(&q, d.point(id as usize)));
        }
    }

    #[test]
    #[should_panic(expected = "multiple of dim")]
    fn bad_flat_length_panics() {
        Dataset::from_flat(3, vec![1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        Dataset::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        Dataset::from_flat(1, vec![f32::NAN]);
    }
}
