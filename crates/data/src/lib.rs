//! Dataset substrate for the DB-LSH reproduction.
//!
//! The paper evaluates on ten real datasets (Table III: Audio, MNIST,
//! Cifar, Trevi, NUS, Deep1M, Gist, SIFT10M, TinyImages80M, SIFT100M).
//! Those corpora are not redistributable inside this repository, so this
//! crate provides:
//!
//! * [`Dataset`] — a flat row-major `f32` matrix with distance helpers;
//! * [`kernels`] — the blocked hot-path kernels every verification loop
//!   and query projection funnels through ([`sq_dist_block`], [`matvec`]);
//! * [`synthetic`] — seeded generators (Gaussian mixtures with planted
//!   clusters plus background noise) whose *relative contrast* structure
//!   reproduces the recall/ratio regimes LSH methods see on the real data;
//! * [`registry`] — a catalogue of the paper's datasets mapping each to a
//!   synthetic clone of the same cardinality/dimensionality (scalable down
//!   for laptop runs);
//! * [`io`] — fvecs/ivecs readers and writers so users with the real files
//!   can drop them in, plus the checksummed snapshot container;
//! * [`wal`] — the write-ahead log container pairing with snapshots for
//!   crash recovery, with a deterministic I/O fault-injection shim;
//! * [`ground_truth`] — exact multi-threaded k-NN;
//! * [`metrics`] — the paper's quality measures (overall ratio, Eq. 11;
//!   recall, Eq. 12);
//! * [`AnnIndex`] — the trait every algorithm (DB-LSH and all baselines)
//!   implements so the benchmark harness can drive them uniformly;
//! * [`error`] — the workspace-wide [`DbLshError`] type every fallible
//!   build/update/query path reports through.

pub mod ann;
pub mod dataset;
pub mod error;
pub mod ground_truth;
pub mod io;
pub mod kernels;
pub mod metrics;
pub mod registry;
pub mod sq8;
pub mod synthetic;
pub mod wal;

pub use ann::{
    parallel_search_batch, push_candidate, push_candidate_unchecked, AnnIndex, Neighbor,
    QueryStats, SearchResult, Visited,
};
pub use dataset::Dataset;
pub use error::{check_query, DbLshError};
pub use ground_truth::exact_knn;
pub use kernels::{
    canonical_verify_keys, canonical_verify_keys_prefiltered,
    canonical_verify_keys_prefiltered_traced, matvec, simd_arch, sq_dist_block, SimdArch,
    VerifySplit,
};
pub use metrics::{overall_ratio, recall};
pub use sq8::{lower_bound, Sq8Grid, Sq8Query, Sq8Store};
pub use wal::{
    encode_wal_record, replay_wal, write_all_faulty, FaultyWriter, WalFile, WalReplay, WalWriter,
    WriteFaultPlan, MAX_WAL_RECORD, WAL_HEADER_LEN, WAL_MAGIC, WAL_VERSION,
};
