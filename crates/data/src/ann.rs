//! The common interface every ANN algorithm in this workspace implements,
//! so the benchmark harness, examples and integration tests can drive
//! DB-LSH and all baselines uniformly.
//!
//! [`AnnIndex::search`] is *fallible*: malformed queries (wrong
//! dimensionality, non-finite coordinates, `k = 0`) are reported as
//! [`DbLshError`] values instead of panics, so indexes can sit behind a
//! serving boundary. Implementations validate with
//! [`crate::error::check_query`] before touching their structures.

use crate::error::DbLshError;
use crate::Dataset;

/// One returned neighbor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index into the dataset the index was built over.
    pub id: u32,
    /// Euclidean distance to the query (not squared).
    pub dist: f32,
}

/// Per-query work counters, used by the ablation experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Candidates whose exact d-dimensional distance was computed.
    pub candidates: usize,
    /// (r,c)-NN rounds / virtual-rehashing levels executed.
    pub rounds: usize,
    /// Index entries touched while generating candidates (window-query
    /// results, cursor steps, bucket hits — whatever the method counts).
    pub index_probes: usize,
    /// Wall-clock nanoseconds spent in exact-distance verification, when
    /// the caller opted into timing (DB-LSH:
    /// `SearchOptions::time_verification`); zero otherwise. Timed at
    /// candidate-block granularity, so the counters above stay cheap when
    /// timing is off.
    pub verify_nanos: u64,
    /// Candidates dropped by the SQ8 quantized pre-filter (their
    /// conservative lower bound already exceeded the pruning threshold,
    /// so no exact distance was computed). Zero when the prefilter is
    /// disabled.
    pub prefilter_pruned: usize,
    /// Candidates that survived the SQ8 pre-filter and went through the
    /// exact bit-parity distance kernel. Zero when the prefilter is
    /// disabled (candidates are then counted only in `candidates`).
    pub prefilter_survivors: usize,
}

impl QueryStats {
    /// Accumulate another query's counters into this one — the single
    /// aggregation point for every batch and serving path (per-batch
    /// totals, engine-level counters), so field-by-field hand-summing
    /// never drifts out of sync when a counter is added.
    pub fn merge(&mut self, other: &QueryStats) {
        self.candidates += other.candidates;
        self.rounds += other.rounds;
        self.index_probes += other.index_probes;
        self.verify_nanos += other.verify_nanos;
        self.prefilter_pruned += other.prefilter_pruned;
        self.prefilter_survivors += other.prefilter_survivors;
    }

    /// Fold an iterator of stats into one aggregate via
    /// [`QueryStats::merge`].
    pub fn merged<'a>(stats: impl IntoIterator<Item = &'a QueryStats>) -> QueryStats {
        let mut total = QueryStats::default();
        for s in stats {
            total.merge(s);
        }
        total
    }
}

/// Result of one (c,k)-ANN query.
#[derive(Debug, Clone, Default)]
pub struct SearchResult {
    /// Up to `k` neighbors, ascending by distance.
    pub neighbors: Vec<Neighbor>,
    pub stats: QueryStats,
}

impl SearchResult {
    /// Ids of the returned neighbors in order.
    pub fn ids(&self) -> Vec<u32> {
        self.neighbors.iter().map(|n| n.id).collect()
    }

    /// Distances of the returned neighbors in order.
    pub fn dists(&self) -> Vec<f32> {
        self.neighbors.iter().map(|n| n.dist).collect()
    }
}

/// A built index answering (c,k)-ANN queries.
///
/// Implementations must return neighbors in ascending distance order and
/// must never return more than `k` results; returning fewer is allowed
/// (an LSH miss) and is scored as such by the metrics. Malformed queries
/// are reported as `Err`, never panics.
pub trait AnnIndex: Sync {
    /// Human-readable algorithm name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Answer a (c,k)-ANN query.
    fn search(&self, query: &[f32], k: usize) -> Result<SearchResult, DbLshError>;

    /// Answer one (c,k)-ANN query per row of `queries`. The default
    /// implementation is a sequential loop delegating per-row validation
    /// to [`AnnIndex::search`]; indexes with cheaper batched plans
    /// (DB-LSH fans the rows across threads) override it, and may
    /// additionally reject a whole batch up front (e.g. a dimensionality
    /// mismatch even when `queries` is empty).
    fn search_batch(&self, queries: &Dataset, k: usize) -> Result<Vec<SearchResult>, DbLshError> {
        if k == 0 {
            return Err(DbLshError::invalid("k", "must be at least 1"));
        }
        (0..queries.len())
            .map(|qi| self.search(queries.point(qi), k))
            .collect()
    }

    /// [`AnnIndex::search_batch`] plus a per-batch aggregate of every
    /// query's work counters (via [`QueryStats::merge`]) — what batch
    /// drivers and serving engines report, without hand-summing fields.
    fn search_batch_aggregate(
        &self,
        queries: &Dataset,
        k: usize,
    ) -> Result<(Vec<SearchResult>, QueryStats), DbLshError> {
        let results = self.search_batch(queries, k)?;
        let total = QueryStats::merged(results.iter().map(|r| &r.stats));
        Ok((results, total))
    }

    /// Bytes of index structure, excluding the dataset itself (the paper
    /// compares index sizes as `n x #hash_functions`).
    fn index_size_bytes(&self) -> usize;
}

/// The shared parallel-batch driver: validate the batch (`queries` must
/// match `dim`, `k >= 1`), then fan the rows across all available cores,
/// calling `search` once per row. Results are in query order; the first
/// row-level error wins. Both the core `DbLsh` and the sharded serving
/// index drive their `search_batch_with` through this, so the chunking
/// and validation logic exists exactly once.
pub fn parallel_search_batch<F>(
    queries: &Dataset,
    dim: usize,
    k: usize,
    search: F,
) -> Result<Vec<SearchResult>, DbLshError>
where
    F: Fn(&[f32]) -> Result<SearchResult, DbLshError> + Sync,
{
    if queries.dim() != dim {
        return Err(DbLshError::DimensionMismatch {
            expected: dim,
            got: queries.dim(),
        });
    }
    if k == 0 {
        return Err(DbLshError::invalid("k", "must be at least 1"));
    }
    let nq = queries.len();
    if nq == 0 {
        return Ok(Vec::new());
    }
    let threads = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(nq);
    let chunk = nq.div_ceil(threads);
    let mut results: Vec<Result<SearchResult, DbLshError>> = vec![Ok(SearchResult::default()); nq];
    let search = &search;
    std::thread::scope(|scope| {
        for (tid, out) in results.chunks_mut(chunk).enumerate() {
            let start = tid * chunk;
            scope.spawn(move || {
                for (offset, slot) in out.iter_mut().enumerate() {
                    *slot = search(queries.point(start + offset));
                }
            });
        }
    });
    results.into_iter().collect()
}

/// Per-query visited-id bitset over dataset rows — the deduplication
/// stage every verification loop shares (DB-LSH's window scans and the
/// baselines' `Verifier`).
///
/// Clearing is *sparse*: [`Visited::reset`] zeroes only the words marked
/// since the previous reset, so a query that verifies `b` candidates
/// pays O(b) cleanup instead of O(n/64) — which is what makes the bitset
/// cheap to reuse across queries.
#[derive(Debug)]
pub struct Visited {
    words: Vec<u64>,
    touched: Vec<u32>,
}

impl Default for Visited {
    fn default() -> Self {
        Visited::empty()
    }
}

impl Visited {
    /// A zero-capacity bitset (const-constructible for thread-local
    /// scratch); call [`Visited::reset`] before use.
    pub const fn empty() -> Self {
        Visited {
            words: Vec::new(),
            touched: Vec::new(),
        }
    }

    /// A cleared bitset covering ids `0..n`.
    pub fn new(n: usize) -> Self {
        let mut v = Visited::empty();
        v.reset(n);
        v
    }

    /// Clear marks from the previous query and grow to cover `n` ids.
    pub fn reset(&mut self, n: usize) {
        for &w in &self.touched {
            self.words[w as usize] = 0;
        }
        self.touched.clear();
        let need = n.div_ceil(64);
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Mark `id`; returns true if it was not marked before.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let w = (id / 64) as usize;
        let bit = 1u64 << (id % 64);
        let word = self.words[w];
        if word == 0 {
            self.touched.push(w as u32);
        }
        let fresh = word & bit == 0;
        self.words[w] = word | bit;
        fresh
    }

    /// Whether `id` is already marked.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.words[(id / 64) as usize] & (1u64 << (id % 64)) != 0
    }
}

/// Sorted insertion of `cand` into `heap` keeping at most `k` items —
/// shared helper for the verification loops of every algorithm.
/// `heap` is maintained ascending by distance.
///
/// Scans `heap` for an existing entry with `cand.id` before inserting;
/// callers that already deduplicate ids upstream (a per-query visited
/// bitset) should use [`push_candidate_unchecked`] and skip that scan.
pub fn push_candidate(heap: &mut Vec<Neighbor>, cand: Neighbor, k: usize) {
    let pos = heap.partition_point(|n| n.dist <= cand.dist);
    if pos >= k {
        return;
    }
    if heap.iter().any(|n| n.id == cand.id) {
        return; // already verified via another projection
    }
    heap.insert(pos, cand);
    heap.truncate(k);
}

/// [`push_candidate`] without the linear duplicate-id scan, for callers
/// that guarantee each id is offered at most once (deduplication via a
/// visited bitset *before* verification). Offering a duplicate id here
/// produces duplicate entries in `heap` — the contract is on the caller.
#[inline]
pub fn push_candidate_unchecked(heap: &mut Vec<Neighbor>, cand: Neighbor, k: usize) {
    debug_assert!(
        !heap.iter().any(|n| n.id == cand.id),
        "push_candidate_unchecked offered duplicate id {}",
        cand.id
    );
    let pos = heap.partition_point(|n| n.dist <= cand.dist);
    if pos >= k {
        return;
    }
    heap.insert(pos, cand);
    heap.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_candidate_keeps_sorted_topk() {
        let mut h = Vec::new();
        for (id, d) in [(1u32, 5.0f32), (2, 1.0), (3, 3.0), (4, 0.5), (5, 9.0)] {
            push_candidate(&mut h, Neighbor { id, dist: d }, 3);
        }
        let ids: Vec<u32> = h.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![4, 2, 3]);
        assert!(h.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn push_candidate_deduplicates_ids() {
        let mut h = Vec::new();
        push_candidate(&mut h, Neighbor { id: 7, dist: 2.0 }, 3);
        push_candidate(&mut h, Neighbor { id: 7, dist: 2.0 }, 3);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn push_candidate_unchecked_matches_checked_on_unique_ids() {
        let mut checked = Vec::new();
        let mut unchecked = Vec::new();
        for (id, d) in [(1u32, 5.0f32), (2, 1.0), (3, 3.0), (4, 0.5), (5, 9.0)] {
            push_candidate(&mut checked, Neighbor { id, dist: d }, 3);
            push_candidate_unchecked(&mut unchecked, Neighbor { id, dist: d }, 3);
        }
        assert_eq!(checked, unchecked);
    }

    #[test]
    fn query_stats_merge_sums_every_field() {
        let a = QueryStats {
            candidates: 3,
            rounds: 2,
            index_probes: 10,
            verify_nanos: 100,
            prefilter_pruned: 4,
            prefilter_survivors: 6,
        };
        let b = QueryStats {
            candidates: 5,
            rounds: 1,
            index_probes: 7,
            verify_nanos: 11,
            prefilter_pruned: 2,
            prefilter_survivors: 3,
        };
        let mut m = a;
        m.merge(&b);
        assert_eq!(
            m,
            QueryStats {
                candidates: 8,
                rounds: 3,
                index_probes: 17,
                verify_nanos: 111,
                prefilter_pruned: 6,
                prefilter_survivors: 9,
            }
        );
        assert_eq!(QueryStats::merged([&a, &b]), m);
        assert_eq!(
            QueryStats::merged(std::iter::empty::<&QueryStats>()),
            QueryStats::default()
        );
    }

    #[test]
    fn visited_marks_and_resets_sparsely() {
        let mut v = Visited::new(130);
        assert!(v.insert(0));
        assert!(v.insert(64));
        assert!(v.insert(129));
        assert!(!v.insert(64));
        assert!(v.contains(129));
        assert!(!v.contains(1));
        // reset clears everything and can grow
        v.reset(300);
        assert!(!v.contains(0));
        assert!(!v.contains(129));
        assert!(v.insert(64));
        assert!(v.insert(299));
    }

    #[test]
    fn push_candidate_rejects_beyond_k() {
        let mut h = Vec::new();
        for i in 0..5u32 {
            push_candidate(
                &mut h,
                Neighbor {
                    id: i,
                    dist: i as f32,
                },
                2,
            );
        }
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].id, 0);
        assert_eq!(h[1].id, 1);
    }
}
