//! The common interface every ANN algorithm in this workspace implements,
//! so the benchmark harness, examples and integration tests can drive
//! DB-LSH and all baselines uniformly.

/// One returned neighbor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// Row index into the dataset the index was built over.
    pub id: u32,
    /// Euclidean distance to the query (not squared).
    pub dist: f32,
}

/// Per-query work counters, used by the ablation experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Candidates whose exact d-dimensional distance was computed.
    pub candidates: usize,
    /// (r,c)-NN rounds / virtual-rehashing levels executed.
    pub rounds: usize,
    /// Index entries touched while generating candidates (window-query
    /// results, cursor steps, bucket hits — whatever the method counts).
    pub index_probes: usize,
}

/// Result of one (c,k)-ANN query.
#[derive(Debug, Clone, Default)]
pub struct SearchResult {
    /// Up to `k` neighbors, ascending by distance.
    pub neighbors: Vec<Neighbor>,
    pub stats: QueryStats,
}

impl SearchResult {
    /// Ids of the returned neighbors in order.
    pub fn ids(&self) -> Vec<u32> {
        self.neighbors.iter().map(|n| n.id).collect()
    }

    /// Distances of the returned neighbors in order.
    pub fn dists(&self) -> Vec<f32> {
        self.neighbors.iter().map(|n| n.dist).collect()
    }
}

/// A built index answering (c,k)-ANN queries.
///
/// Implementations must return neighbors in ascending distance order and
/// must never return more than `k` results; returning fewer is allowed
/// (an LSH miss) and is scored as such by the metrics.
pub trait AnnIndex {
    /// Human-readable algorithm name as used in the paper's tables.
    fn name(&self) -> &'static str;

    /// Answer a (c,k)-ANN query.
    fn search(&self, query: &[f32], k: usize) -> SearchResult;

    /// Bytes of index structure, excluding the dataset itself (the paper
    /// compares index sizes as `n x #hash_functions`).
    fn index_size_bytes(&self) -> usize;
}

/// Sorted insertion of `cand` into `heap` keeping at most `k` items —
/// shared helper for the verification loops of every algorithm.
/// `heap` is maintained ascending by distance.
pub fn push_candidate(heap: &mut Vec<Neighbor>, cand: Neighbor, k: usize) {
    let pos = heap.partition_point(|n| n.dist <= cand.dist);
    if pos >= k {
        return;
    }
    if heap.iter().any(|n| n.id == cand.id) {
        return; // already verified via another projection
    }
    heap.insert(pos, cand);
    heap.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_candidate_keeps_sorted_topk() {
        let mut h = Vec::new();
        for (id, d) in [(1u32, 5.0f32), (2, 1.0), (3, 3.0), (4, 0.5), (5, 9.0)] {
            push_candidate(&mut h, Neighbor { id, dist: d }, 3);
        }
        let ids: Vec<u32> = h.iter().map(|n| n.id).collect();
        assert_eq!(ids, vec![4, 2, 3]);
        assert!(h.windows(2).all(|w| w[0].dist <= w[1].dist));
    }

    #[test]
    fn push_candidate_deduplicates_ids() {
        let mut h = Vec::new();
        push_candidate(&mut h, Neighbor { id: 7, dist: 2.0 }, 3);
        push_candidate(&mut h, Neighbor { id: 7, dist: 2.0 }, 3);
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn push_candidate_rejects_beyond_k() {
        let mut h = Vec::new();
        for i in 0..5u32 {
            push_candidate(
                &mut h,
                Neighbor {
                    id: i,
                    dist: i as f32,
                },
                2,
            );
        }
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].id, 0);
        assert_eq!(h[1].id, 1);
    }
}
