//! SQ8 scalar quantization for the verification pre-filter.
//!
//! Every row of the dataset is encoded as one `u8` per dimension against a
//! per-dimension `[min, max]` grid learned at build time.  At query time the
//! codes are scanned with a runtime-dispatched SIMD kernel that produces a
//! **conservative lower bound** on the squared distance between the query and
//! the original `f32` row.  Candidates whose bound exceeds the current pruning
//! threshold are provably outside the top-k and are dropped before their `f32`
//! row is ever touched; survivors still go through the bit-parity exact kernel
//! ([`crate::kernels::sq_dist_block`]), so canonical answers stay byte-identical
//! whether the pre-filter is on or off.
//!
//! # Why the bound is safe
//!
//! For dimension `j` with grid `min_j` / `step_j`, a stored value `x_j` encodes
//! to `c_j = round((x_j - min_j) / step_j)` clamped to `[0, 255]`.  When the
//! rounded value fits the grid, the scaled coordinate `t_x = (x_j - min_j) /
//! step_j` satisfies `|t_x - c_j| <= 0.5 + rounding`, so for a query scaled the
//! same way (`t_j`):
//!
//! ```text
//! |q_j - x_j| = step_j * |t_j - t_x| >= step_j * max(0, |t_j - c_j| - slack_j)
//! ```
//!
//! where `slack_j = 0.5 + 8·EPS·(|t_j| + 256)` absorbs every `f32` rounding
//! step in both the encoder and the query preparation.  Summing the squared
//! per-dimension bounds and deflating the total by `1 - EPS·(4·dim + 16)`
//! absorbs the accumulation rounding, so the final value never exceeds the
//! exact squared distance computed by the scalar reference kernel.  Rows whose
//! encoding clamped (inserted after build, outside the learned grid) and any
//! non-finite intermediate collapse the bound to `0.0`, which never prunes.
//!
//! # Determinism across SIMD arms
//!
//! Although pruning would be *correct* with any bound at all, the kernel pins a
//! fixed 8-lane accumulator layout and `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`
//! reduction so that scalar, SSE2, AVX2 and NEON arms produce bitwise-identical
//! bounds.  That keeps the `prefilter_pruned` / `prefilter_survivors` counters
//! (and therefore every stats-parity test) identical across machines, not just
//! the canonical answers.

use crate::error::DbLshError;

/// Per-dimension quantization grid: `min` and `step` for each dimension.
///
/// `step` is always finite and strictly positive; constant dimensions
/// (`min == max`) use `step = 1.0` so every row encodes to code `0` exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Grid {
    min: Vec<f32>,
    step: Vec<f32>,
}

impl Sq8Grid {
    /// Learn a grid from `rows * dim` row-major flat data.
    ///
    /// The result depends only on the *multiset* of values per dimension, so
    /// relabeled / reordered builds of the same dataset learn the same grid.
    pub fn learn(dim: usize, flat: &[f32]) -> Sq8Grid {
        assert!(dim > 0, "Sq8Grid::learn: dim must be positive");
        assert_eq!(flat.len() % dim, 0, "Sq8Grid::learn: ragged flat data");
        let mut min = vec![f32::INFINITY; dim];
        let mut max = vec![f32::NEG_INFINITY; dim];
        for row in flat.chunks_exact(dim) {
            for (j, &v) in row.iter().enumerate() {
                if v < min[j] {
                    min[j] = v;
                }
                if v > max[j] {
                    max[j] = v;
                }
            }
        }
        let mut step = Vec::with_capacity(dim);
        for j in 0..dim {
            if !min[j].is_finite() {
                // Empty input: pick an arbitrary valid grid.
                min[j] = 0.0;
                max[j] = 0.0;
            }
            let s = (max[j] - min[j]) / 255.0;
            step.push(if s.is_finite() && s > 0.0 { s } else { 1.0 });
        }
        Sq8Grid { min, step }
    }

    /// Reassemble a grid from snapshot parts, validating the invariants that
    /// [`Sq8Grid::learn`] guarantees. Violations surface as
    /// [`DbLshError::CorruptSnapshot`] — this is the snapshot decode path.
    pub fn from_parts(min: Vec<f32>, step: Vec<f32>) -> Result<Sq8Grid, DbLshError> {
        if min.is_empty() || min.len() != step.len() {
            return Err(DbLshError::corrupt(
                "sq8 grid: min/step length mismatch or empty",
            ));
        }
        if min.iter().any(|v| !v.is_finite()) {
            return Err(DbLshError::corrupt("sq8 grid: non-finite min"));
        }
        if step.iter().any(|v| !v.is_finite() || *v <= 0.0) {
            return Err(DbLshError::corrupt(
                "sq8 grid: step must be finite and positive",
            ));
        }
        Ok(Sq8Grid { min, step })
    }

    /// Number of dimensions the grid quantizes.
    pub fn dim(&self) -> usize {
        self.min.len()
    }

    /// Per-dimension grid origin.
    pub fn min(&self) -> &[f32] {
        &self.min
    }

    /// Per-dimension grid step (finite, strictly positive).
    pub fn step(&self) -> &[f32] {
        &self.step
    }
}

/// SQ8 code store: one `u8` per dimension per row plus a per-row flag marking
/// rows whose encoding clamped (their lower bound is forced to `0.0`).
///
/// Rows are kept in the same internal order as the verification rows of the
/// owning index, so candidate ids address codes directly.
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Store {
    grid: Sq8Grid,
    codes: Vec<u8>,
    clamped: Vec<u8>,
}

impl Sq8Store {
    /// Encode every row of `flat` (row-major, `grid.dim()` wide) against `grid`.
    pub fn build(grid: Sq8Grid, flat: &[f32]) -> Sq8Store {
        let dim = grid.dim();
        assert_eq!(flat.len() % dim, 0, "Sq8Store::build: ragged flat data");
        let rows = flat.len() / dim;
        let mut store = Sq8Store {
            grid,
            codes: Vec::with_capacity(rows * dim),
            clamped: Vec::with_capacity(rows),
        };
        for row in flat.chunks_exact(dim) {
            store.push(row);
        }
        store
    }

    /// Learn a grid from `flat` and encode every row against it.
    pub fn learn_and_build(dim: usize, flat: &[f32]) -> Sq8Store {
        Sq8Store::build(Sq8Grid::learn(dim, flat), flat)
    }

    /// Append one row's codes; sets the clamped flag if any dimension fell
    /// outside the learned grid (the row then never gets pruned).
    pub fn push(&mut self, point: &[f32]) {
        let dim = self.grid.dim();
        assert_eq!(point.len(), dim, "Sq8Store::push: dimension mismatch");
        let mut clamped = false;
        for (j, &p) in point.iter().enumerate() {
            let t = (p - self.grid.min[j]) / self.grid.step[j];
            let r = t.round();
            let code = if r.is_finite() && (0.0..=255.0).contains(&r) {
                r as u8
            } else {
                clamped = true;
                if r > 255.0 {
                    255
                } else {
                    0
                }
            };
            self.codes.push(code);
        }
        self.clamped.push(clamped as u8);
    }

    /// Number of encoded rows.
    pub fn len(&self) -> usize {
        self.clamped.len()
    }

    /// Whether the store holds no rows.
    pub fn is_empty(&self) -> bool {
        self.clamped.is_empty()
    }

    /// The grid rows are encoded against.
    pub fn grid(&self) -> &Sq8Grid {
        &self.grid
    }

    /// Codes of row `id`.
    pub fn codes_row(&self, id: u32) -> &[u8] {
        let dim = self.grid.dim();
        let base = id as usize * dim;
        &self.codes[base..base + dim]
    }

    /// Whether row `id`'s encoding clamped (bound is untrustworthy, never prune).
    pub fn is_clamped(&self, id: u32) -> bool {
        self.clamped[id as usize] != 0
    }

    /// Rebuild the store keeping only the rows named by `keep` (ascending old
    /// internal ids), in `keep` order — mirrors index compaction.
    pub fn retained(&self, keep: &[u32]) -> Sq8Store {
        let dim = self.grid.dim();
        let mut codes = Vec::with_capacity(keep.len() * dim);
        let mut clamped = Vec::with_capacity(keep.len());
        for &old in keep {
            codes.extend_from_slice(self.codes_row(old));
            clamped.push(self.clamped[old as usize]);
        }
        Sq8Store {
            grid: self.grid.clone(),
            codes,
            clamped,
        }
    }

    /// Logical (len-based) bytes held by the code store — one `u8` code
    /// per coordinate, one clamped flag per row, plus the grid. Len-based
    /// like the index memory breakdown's other figures, so `Vec` growth
    /// slack after insert traffic does not distort the accounting.
    pub fn memory_bytes(&self) -> usize {
        self.codes.len()
            + self.clamped.len()
            + (self.grid.min.len() + self.grid.step.len()) * std::mem::size_of::<f32>()
    }

    /// Prepare `query` for bound scans against this store's grid, reusing the
    /// allocations inside `prep`.
    pub fn prepare_query(&self, query: &[f32], prep: &mut Sq8Query) {
        prep.prepare(&self.grid, query);
    }
}

/// Per-query scratch for the lower-bound scan: the query rescaled into grid
/// coordinates plus per-dimension slack and squared step.
#[derive(Debug, Clone, PartialEq)]
pub struct Sq8Query {
    t: Vec<f32>,
    slack: Vec<f32>,
    step_sq: Vec<f32>,
    deflate: f32,
}

impl Sq8Query {
    /// An empty prep, suitable for const thread-local scratch.
    pub const fn empty() -> Sq8Query {
        Sq8Query {
            t: Vec::new(),
            slack: Vec::new(),
            step_sq: Vec::new(),
            deflate: 1.0,
        }
    }

    /// Rescale `query` into `grid` coordinates and precompute per-dimension
    /// slack.  Dimensions whose rescaled coordinate is non-finite get infinite
    /// slack so they contribute exactly `0.0` to every bound.
    pub fn prepare(&mut self, grid: &Sq8Grid, query: &[f32]) {
        let dim = grid.dim();
        assert_eq!(query.len(), dim, "Sq8Query::prepare: dimension mismatch");
        self.t.clear();
        self.slack.clear();
        self.step_sq.clear();
        for (j, &qv) in query.iter().enumerate() {
            let t = (qv - grid.min[j]) / grid.step[j];
            if t.is_finite() {
                self.t.push(t);
                self.slack
                    .push(0.5 + 8.0 * f32::EPSILON * (t.abs() + 256.0));
            } else {
                self.t.push(0.0);
                self.slack.push(f32::INFINITY);
            }
            self.step_sq.push(grid.step[j] * grid.step[j]);
        }
        self.deflate = (1.0 - f32::EPSILON * (4 * dim + 16) as f32).max(0.0);
    }

    /// Number of dimensions the prep was built for (0 before first `prepare`).
    pub fn dim(&self) -> usize {
        self.t.len()
    }
}

/// Conservative lower bound on the squared distance between the prepared query
/// and the row encoded by `codes`, via the runtime-dispatched SIMD arm.
///
/// Guarantees `lower_bound(prep, codes) <= sq_dist(query, row)` for the `f32`
/// row that produced `codes` with no clamping; returns `0.0` (never prunes)
/// whenever the bound cannot be trusted.  Bitwise-identical across all arms.
pub fn lower_bound(prep: &Sq8Query, codes: &[u8]) -> f32 {
    match crate::kernels::simd_arch() {
        #[cfg(target_arch = "x86_64")]
        crate::kernels::SimdArch::Avx2 => x86::lower_bound_avx2(prep, codes),
        #[cfg(target_arch = "x86_64")]
        crate::kernels::SimdArch::Sse2 => x86::lower_bound_sse2(prep, codes),
        #[cfg(target_arch = "aarch64")]
        crate::kernels::SimdArch::Neon => neon::lower_bound_neon(prep, codes),
        _ => lower_bound_scalar(prep, codes),
    }
}

/// Batched [`lower_bound`]: `out[i]` becomes the bound for `ids[i]`, with
/// rows flagged clamped forced to `0.0` (never pruned).  Resolves the SIMD
/// arm — and its feature check — **once** for the whole batch, letting the
/// per-row kernel inline into the batch loop; this is what the pre-filter
/// hot path calls.  Each `out[i]` is bitwise-identical to the per-row
/// `lower_bound` result.
pub fn lower_bound_block(prep: &Sq8Query, store: &Sq8Store, ids: &[u32], out: &mut Vec<f32>) {
    out.clear();
    out.resize(ids.len(), 0.0);
    match crate::kernels::simd_arch() {
        #[cfg(target_arch = "x86_64")]
        crate::kernels::SimdArch::Avx2 => x86::lower_bound_block_avx2(prep, store, ids, out),
        #[cfg(target_arch = "x86_64")]
        crate::kernels::SimdArch::Sse2 => x86::lower_bound_block_sse2(prep, store, ids, out),
        #[cfg(target_arch = "aarch64")]
        crate::kernels::SimdArch::Neon => neon::lower_bound_block_neon(prep, store, ids, out),
        _ => lower_bound_block_scalar(prep, store, ids, out),
    }
}

/// Portable scalar arm of [`lower_bound_block`].
pub fn lower_bound_block_scalar(prep: &Sq8Query, store: &Sq8Store, ids: &[u32], out: &mut [f32]) {
    for (o, &id) in out.iter_mut().zip(ids) {
        *o = if store.is_clamped(id) {
            0.0
        } else {
            lower_bound_scalar(prep, store.codes_row(id))
        };
    }
}

/// Accumulate the `dim % 8` tail dimensions into lane 0 — shared verbatim
/// by the scalar reference and every SIMD arm so the reduction order stays
/// bit-identical across all of them.
#[inline(always)]
fn tail_into_lane0(prep: &Sq8Query, codes: &[u8], split: usize, acc: &mut [f32; 8]) {
    for (j, &c) in codes.iter().enumerate().skip(split) {
        let d = (prep.t[j] - c as f32).abs();
        let e = (d - prep.slack[j]).max(0.0);
        acc[0] += e * e * prep.step_sq[j];
    }
}

/// Finalize a raw lane sum into the guaranteed-safe bound: deflate for
/// accumulation rounding and collapse anything suspicious to `0.0`.
#[inline]
fn finish_bound(sum: f32, deflate: f32) -> f32 {
    let bound = sum * deflate;
    if bound.is_finite() {
        bound.max(0.0)
    } else {
        0.0
    }
}

/// Portable scalar reference for the lower-bound scan.
///
/// Pins the 8-lane accumulator layout and `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`
/// reduction that every SIMD arm replicates bit-for-bit.
pub fn lower_bound_scalar(prep: &Sq8Query, codes: &[u8]) -> f32 {
    let dim = codes.len();
    debug_assert_eq!(prep.t.len(), dim, "lower_bound: prep/codes dim mismatch");
    let chunks = dim / 8;
    let split = chunks * 8;
    let mut acc = [0.0f32; 8];
    for c in 0..chunks {
        let base = c * 8;
        for (lane, a) in acc.iter_mut().enumerate() {
            let j = base + lane;
            let d = (prep.t[j] - codes[j] as f32).abs();
            let e = (d - prep.slack[j]).max(0.0);
            *a += e * e * prep.step_sq[j];
        }
    }
    tail_into_lane0(prep, codes, split, &mut acc);
    let sum = ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
    finish_bound(sum, prep.deflate)
}

/// x86-64 SIMD arms of the lower-bound scan.  Public so the parity tests can
/// exercise each compiled variant directly.
#[cfg(target_arch = "x86_64")]
pub mod x86 {
    use super::{finish_bound, Sq8Query, Sq8Store};
    use std::arch::x86_64::*;

    /// SSE2 arm (baseline on x86-64).  Bitwise-identical to the scalar
    /// reference: two 4-lane banks cover scalar lanes 0–3 and 4–7.
    pub fn lower_bound_sse2(prep: &Sq8Query, codes: &[u8]) -> f32 {
        // SAFETY: SSE2 is part of the x86_64 baseline, so the target feature
        // is always available; all pointer arithmetic stays within the slices
        // checked by the debug assertion in the kernel.
        unsafe { lower_bound_sse2_impl(prep, codes) }
    }

    /// # Safety
    /// The caller must guarantee SSE2 is available (part of the x86_64
    /// baseline) and that `prep` spans `codes.len()` lanes — every 4-lane
    /// load stays below `codes.len()` rounded down to a multiple of 8,
    /// the tail is handled by the bounds-checked scalar helper.
    #[target_feature(enable = "sse2")]
    unsafe fn lower_bound_sse2_impl(prep: &Sq8Query, codes: &[u8]) -> f32 {
        let dim = codes.len();
        debug_assert_eq!(prep.t.len(), dim, "lower_bound: prep/codes dim mismatch");
        let chunks = dim / 8;
        let split = chunks * 8;
        let zero = _mm_setzero_ps();
        let sign = _mm_set1_ps(-0.0);
        let zero_i = _mm_setzero_si128();
        let mut lo = zero;
        let mut hi = zero;
        for c in 0..chunks {
            let base = c * 8;
            // Widen 8 u8 codes to two f32x4 vectors (exact: values <= 255).
            let c8 = _mm_loadl_epi64(codes.as_ptr().add(base) as *const __m128i);
            let c16 = _mm_unpacklo_epi8(c8, zero_i);
            let f_lo = _mm_cvtepi32_ps(_mm_unpacklo_epi16(c16, zero_i));
            let f_hi = _mm_cvtepi32_ps(_mm_unpackhi_epi16(c16, zero_i));
            for (half, f) in [(0usize, f_lo), (4usize, f_hi)] {
                let t = _mm_loadu_ps(prep.t.as_ptr().add(base + half));
                let slack = _mm_loadu_ps(prep.slack.as_ptr().add(base + half));
                let s2 = _mm_loadu_ps(prep.step_sq.as_ptr().add(base + half));
                let d = _mm_andnot_ps(sign, _mm_sub_ps(t, f));
                let e = _mm_max_ps(_mm_sub_ps(d, slack), zero);
                let term = _mm_mul_ps(_mm_mul_ps(e, e), s2);
                if half == 0 {
                    lo = _mm_add_ps(lo, term);
                } else {
                    hi = _mm_add_ps(hi, term);
                }
            }
        }
        let mut acc = [0.0f32; 8];
        _mm_storeu_ps(acc.as_mut_ptr(), lo);
        _mm_storeu_ps(acc.as_mut_ptr().add(4), hi);
        super::tail_into_lane0(prep, codes, split, &mut acc);
        let sum = ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
        finish_bound(sum, prep.deflate)
    }

    /// AVX2 arm.  One 8-lane bank; the `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`
    /// reduction matches the scalar reference bit-for-bit.
    ///
    /// # Panics
    /// Panics if AVX2 is not available at runtime.
    pub fn lower_bound_avx2(prep: &Sq8Query, codes: &[u8]) -> f32 {
        assert!(
            is_x86_feature_detected!("avx2"),
            "lower_bound_avx2 requires AVX2"
        );
        // SAFETY: AVX2 availability was just asserted; all pointer arithmetic
        // stays within the slices checked by the kernel's debug assertion.
        unsafe { lower_bound_avx2_impl(prep, codes) }
    }

    /// # Safety
    /// The caller must guarantee AVX2 is available and that `prep` spans
    /// `codes.len()` lanes — every 8-lane load stays below `codes.len()`
    /// rounded down to a multiple of 8, the tail is handled by the
    /// bounds-checked scalar helper.
    #[target_feature(enable = "avx2")]
    unsafe fn lower_bound_avx2_impl(prep: &Sq8Query, codes: &[u8]) -> f32 {
        let dim = codes.len();
        debug_assert_eq!(prep.t.len(), dim, "lower_bound: prep/codes dim mismatch");
        let chunks = dim / 8;
        let split = chunks * 8;
        let zero = _mm256_setzero_ps();
        let sign = _mm256_set1_ps(-0.0);
        let mut bank = zero;
        for c in 0..chunks {
            let base = c * 8;
            // Widen 8 u8 codes to f32x8 (exact: values <= 255).
            let c8 = _mm_loadl_epi64(codes.as_ptr().add(base) as *const __m128i);
            let f = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(c8));
            let t = _mm256_loadu_ps(prep.t.as_ptr().add(base));
            let slack = _mm256_loadu_ps(prep.slack.as_ptr().add(base));
            let s2 = _mm256_loadu_ps(prep.step_sq.as_ptr().add(base));
            let d = _mm256_andnot_ps(sign, _mm256_sub_ps(t, f));
            let e = _mm256_max_ps(_mm256_sub_ps(d, slack), zero);
            bank = _mm256_add_ps(bank, _mm256_mul_ps(_mm256_mul_ps(e, e), s2));
        }
        let mut acc = [0.0f32; 8];
        _mm256_storeu_ps(acc.as_mut_ptr(), bank);
        super::tail_into_lane0(prep, codes, split, &mut acc);
        let sum = ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
        finish_bound(sum, prep.deflate)
    }

    /// SSE2 arm of [`super::lower_bound_block`]: one feature context for the
    /// whole batch so the per-row kernel inlines into the loop.
    pub fn lower_bound_block_sse2(prep: &Sq8Query, store: &Sq8Store, ids: &[u32], out: &mut [f32]) {
        // SAFETY: SSE2 is part of the x86_64 baseline.
        unsafe { lower_bound_block_sse2_impl(prep, store, ids, out) }
    }

    /// # Safety
    /// The caller must guarantee SSE2 is available (x86_64 baseline) and
    /// that every id has a row in `store` — `codes_row` bounds-checks the
    /// slice it hands to the per-row kernel, whose length precondition it
    /// thereby satisfies.
    #[target_feature(enable = "sse2")]
    unsafe fn lower_bound_block_sse2_impl(
        prep: &Sq8Query,
        store: &Sq8Store,
        ids: &[u32],
        out: &mut [f32],
    ) {
        for (o, &id) in out.iter_mut().zip(ids) {
            *o = if store.is_clamped(id) {
                0.0
            } else {
                lower_bound_sse2_impl(prep, store.codes_row(id))
            };
        }
    }

    /// AVX2 arm of [`super::lower_bound_block`]: the feature check runs once
    /// per batch instead of once per candidate row.
    ///
    /// # Panics
    /// Panics if AVX2 is not available at runtime.
    pub fn lower_bound_block_avx2(prep: &Sq8Query, store: &Sq8Store, ids: &[u32], out: &mut [f32]) {
        assert!(
            is_x86_feature_detected!("avx2"),
            "lower_bound_block_avx2 requires AVX2"
        );
        // SAFETY: AVX2 availability was just asserted.
        unsafe { lower_bound_block_avx2_impl(prep, store, ids, out) }
    }

    /// Interleaves four rows per tile: the shared `t`/`slack`/`step_sq`
    /// loads amortize across the tile and the four independent accumulator
    /// chains hide the widen→sub→max→mul latency that makes the one-row
    /// kernel latency-bound at small `dim`.  Each row still executes the
    /// exact per-row operation sequence, so results stay bitwise-identical
    /// to [`super::lower_bound_scalar`].
    /// # Safety
    /// The caller must guarantee AVX2 is available and that `prep` and
    /// every id's row share the store's `dim` — the tile loads walk `dim`
    /// rounded down to a multiple of 8 over slices `codes_row` has
    /// bounds-checked to exactly `dim` bytes.
    #[target_feature(enable = "avx2")]
    unsafe fn lower_bound_block_avx2_impl(
        prep: &Sq8Query,
        store: &Sq8Store,
        ids: &[u32],
        out: &mut [f32],
    ) {
        let dim = store.grid().dim();
        debug_assert_eq!(prep.t.len(), dim, "lower_bound: prep/store dim mismatch");
        let chunks = dim / 8;
        let split = chunks * 8;
        let zero = _mm256_setzero_ps();
        let sign = _mm256_set1_ps(-0.0);
        let mut i = 0;
        while i + 4 <= ids.len() {
            let rows = [
                store.codes_row(ids[i]),
                store.codes_row(ids[i + 1]),
                store.codes_row(ids[i + 2]),
                store.codes_row(ids[i + 3]),
            ];
            // Pull code rows two tiles ahead toward L1 while this tile
            // computes — candidate rows are scattered, so the hardware
            // prefetcher cannot see them coming, and one tile of compute
            // is shorter than a DRAM round-trip.
            if i + 12 <= ids.len() {
                for r in 0..4 {
                    let next = store.codes_row(ids[i + 8 + r]).as_ptr();
                    _mm_prefetch(next as *const i8, _MM_HINT_T0);
                    if dim > 64 {
                        _mm_prefetch(next.add(64) as *const i8, _MM_HINT_T0);
                    }
                }
            }
            let mut banks = [zero; 4];
            for c in 0..chunks {
                let base = c * 8;
                let t = _mm256_loadu_ps(prep.t.as_ptr().add(base));
                let slack = _mm256_loadu_ps(prep.slack.as_ptr().add(base));
                let s2 = _mm256_loadu_ps(prep.step_sq.as_ptr().add(base));
                for (r, row) in rows.iter().enumerate() {
                    // Widen 8 u8 codes to f32x8 (exact: values <= 255).
                    let c8 = _mm_loadl_epi64(row.as_ptr().add(base) as *const __m128i);
                    let f = _mm256_cvtepi32_ps(_mm256_cvtepu8_epi32(c8));
                    let d = _mm256_andnot_ps(sign, _mm256_sub_ps(t, f));
                    let e = _mm256_max_ps(_mm256_sub_ps(d, slack), zero);
                    banks[r] = _mm256_add_ps(banks[r], _mm256_mul_ps(_mm256_mul_ps(e, e), s2));
                }
            }
            for (r, row) in rows.iter().enumerate() {
                let mut acc = [0.0f32; 8];
                _mm256_storeu_ps(acc.as_mut_ptr(), banks[r]);
                super::tail_into_lane0(prep, row, split, &mut acc);
                let sum = ((acc[0] + acc[4]) + (acc[1] + acc[5]))
                    + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
                out[i + r] = if store.is_clamped(ids[i + r]) {
                    0.0
                } else {
                    finish_bound(sum, prep.deflate)
                };
            }
            i += 4;
        }
        while i < ids.len() {
            let id = ids[i];
            out[i] = if store.is_clamped(id) {
                0.0
            } else {
                lower_bound_avx2_impl(prep, store.codes_row(id))
            };
            i += 1;
        }
    }
}

/// AArch64 NEON arm of the lower-bound scan.
#[cfg(target_arch = "aarch64")]
pub mod neon {
    use super::{finish_bound, Sq8Query, Sq8Store};
    use std::arch::aarch64::*;

    /// NEON arm (baseline on aarch64).  Two 4-lane banks cover scalar lanes
    /// 0–3 and 4–7, matching the scalar reference bit-for-bit.
    pub fn lower_bound_neon(prep: &Sq8Query, codes: &[u8]) -> f32 {
        // SAFETY: NEON is part of the aarch64 baseline, so the target feature
        // is always available; all pointer arithmetic stays within the slices
        // checked by the kernel's debug assertion.
        unsafe { lower_bound_neon_impl(prep, codes) }
    }

    /// # Safety
    /// The caller must guarantee NEON is available (part of the aarch64
    /// baseline) and that `prep` spans `codes.len()` lanes — every 4-lane
    /// load stays below `codes.len()` rounded down to a multiple of 8,
    /// the tail is handled by the bounds-checked scalar helper.
    #[target_feature(enable = "neon")]
    unsafe fn lower_bound_neon_impl(prep: &Sq8Query, codes: &[u8]) -> f32 {
        let dim = codes.len();
        debug_assert_eq!(prep.t.len(), dim, "lower_bound: prep/codes dim mismatch");
        let chunks = dim / 8;
        let split = chunks * 8;
        let zero = vdupq_n_f32(0.0);
        let mut lo = zero;
        let mut hi = zero;
        for c in 0..chunks {
            let base = c * 8;
            // Widen 8 u8 codes to two f32x4 vectors (exact: values <= 255).
            let c8 = vld1_u8(codes.as_ptr().add(base));
            let c16 = vmovl_u8(c8);
            let f_lo = vcvtq_f32_u32(vmovl_u16(vget_low_u16(c16)));
            let f_hi = vcvtq_f32_u32(vmovl_u16(vget_high_u16(c16)));
            for (half, f) in [(0usize, f_lo), (4usize, f_hi)] {
                let t = vld1q_f32(prep.t.as_ptr().add(base + half));
                let slack = vld1q_f32(prep.slack.as_ptr().add(base + half));
                let s2 = vld1q_f32(prep.step_sq.as_ptr().add(base + half));
                let d = vabsq_f32(vsubq_f32(t, f));
                let e = vmaxq_f32(vsubq_f32(d, slack), zero);
                let term = vmulq_f32(vmulq_f32(e, e), s2);
                if half == 0 {
                    lo = vaddq_f32(lo, term);
                } else {
                    hi = vaddq_f32(hi, term);
                }
            }
        }
        let mut acc = [0.0f32; 8];
        vst1q_f32(acc.as_mut_ptr(), lo);
        vst1q_f32(acc.as_mut_ptr().add(4), hi);
        super::tail_into_lane0(prep, codes, split, &mut acc);
        let sum = ((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]));
        finish_bound(sum, prep.deflate)
    }

    /// NEON arm of [`super::lower_bound_block`]: one feature context for the
    /// whole batch so the per-row kernel inlines into the loop.
    pub fn lower_bound_block_neon(prep: &Sq8Query, store: &Sq8Store, ids: &[u32], out: &mut [f32]) {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { lower_bound_block_neon_impl(prep, store, ids, out) }
    }

    /// # Safety
    /// The caller must guarantee NEON is available (aarch64 baseline) and
    /// that every id has a row in `store` — `codes_row` bounds-checks the
    /// slice it hands to the per-row kernel, whose length precondition it
    /// thereby satisfies.
    #[target_feature(enable = "neon")]
    unsafe fn lower_bound_block_neon_impl(
        prep: &Sq8Query,
        store: &Sq8Store,
        ids: &[u32],
        out: &mut [f32],
    ) {
        for (o, &id) in out.iter_mut().zip(ids) {
            *o = if store.is_clamped(id) {
                0.0
            } else {
                lower_bound_neon_impl(prep, store.codes_row(id))
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::sq_dist;

    fn rows(n: usize, dim: usize, salt: u64) -> Vec<f32> {
        (0..n * dim)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(salt);
                ((x >> 33) as f32 / (1u64 << 31) as f32) * 20.0 - 10.0
            })
            .collect()
    }

    #[test]
    fn grid_is_order_independent() {
        let dim = 7;
        let flat = rows(40, dim, 3);
        let g = Sq8Grid::learn(dim, &flat);
        let mut rev: Vec<f32> = Vec::new();
        for r in flat.chunks_exact(dim).rev() {
            rev.extend_from_slice(r);
        }
        let g2 = Sq8Grid::learn(dim, &rev);
        assert_eq!(g, g2);
    }

    #[test]
    fn bound_never_exceeds_exact_distance() {
        for &dim in &[1usize, 3, 8, 9, 24, 33] {
            let flat = rows(50, dim, dim as u64);
            let store = Sq8Store::learn_and_build(dim, &flat);
            let mut prep = Sq8Query::empty();
            for qi in 0..10 {
                let q = &rows(50, dim, 777 + qi)[..dim];
                store.prepare_query(q, &mut prep);
                for id in 0..store.len() as u32 {
                    let exact = sq_dist(q, &flat[id as usize * dim..(id as usize + 1) * dim]);
                    let bound = lower_bound(&prep, store.codes_row(id));
                    assert!(
                        bound <= exact,
                        "dim {dim} id {id}: bound {bound} > exact {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn constant_dimensions_bound_to_zero_against_members() {
        let dim = 5;
        let mut flat = rows(20, dim, 9);
        for row in flat.chunks_exact_mut(dim) {
            row[2] = 4.25; // constant dimension -> min == max -> step = 1.0
        }
        let store = Sq8Store::learn_and_build(dim, &flat);
        assert_eq!(store.grid().step()[2], 1.0);
        let mut prep = Sq8Query::empty();
        let q = flat[..dim].to_vec();
        store.prepare_query(&q, &mut prep);
        let bound = lower_bound(&prep, store.codes_row(0));
        assert_eq!(bound, 0.0, "a member row must never bound above zero");
    }

    #[test]
    fn clamped_rows_never_prune() {
        let dim = 4;
        let flat = rows(10, dim, 1);
        let mut store = Sq8Store::learn_and_build(dim, &flat);
        store.push(&[1e9; 4]); // far outside the learned grid
        let id = store.len() as u32 - 1;
        assert!(store.is_clamped(id));
        assert!(!store.is_clamped(0));
    }

    #[test]
    fn retained_matches_rebuild() {
        let dim = 6;
        let flat = rows(30, dim, 5);
        let store = Sq8Store::learn_and_build(dim, &flat);
        let keep: Vec<u32> = (0..30).filter(|i| i % 3 != 0).collect();
        let retained = store.retained(&keep);
        let mut kept_flat = Vec::new();
        for &k in &keep {
            kept_flat.extend_from_slice(&flat[k as usize * dim..(k as usize + 1) * dim]);
        }
        let rebuilt = Sq8Store::build(store.grid().clone(), &kept_flat);
        assert_eq!(retained, rebuilt);
    }

    #[test]
    fn non_finite_query_coordinates_contribute_zero() {
        let dim = 3;
        let flat = rows(8, dim, 2);
        let store = Sq8Store::learn_and_build(dim, &flat);
        let mut prep = Sq8Query::empty();
        // A query coordinate so large that (q - min) overflows to infinity.
        store.prepare_query(&[f32::MAX, 0.0, 0.0], &mut prep);
        let bound = lower_bound(&prep, store.codes_row(0));
        assert!(bound.is_finite());
    }

    #[test]
    fn from_parts_validates() {
        assert!(Sq8Grid::from_parts(vec![0.0], vec![1.0]).is_ok());
        assert!(Sq8Grid::from_parts(vec![], vec![]).is_err());
        assert!(Sq8Grid::from_parts(vec![0.0], vec![0.0]).is_err());
        assert!(Sq8Grid::from_parts(vec![0.0], vec![f32::NAN]).is_err());
        assert!(Sq8Grid::from_parts(vec![f32::INFINITY], vec![1.0]).is_err());
        assert!(Sq8Grid::from_parts(vec![0.0, 1.0], vec![1.0]).is_err());
    }
}
