//! Property tests of the blocked kernels: `sq_dist_block` and `matvec`
//! must be *bit-identical* per row to their scalar counterparts for every
//! dimensionality, batch size (covering all block-tail lengths 0..=7) and
//! id order — block boundaries must never leak into results, because the
//! relabel-parity guarantees of `dblsh-core` rest on that.

use dblsh_data::dataset::sq_dist;
use dblsh_data::kernels::{dot_f64, matvec, sq_dist_block};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sq_dist_block_is_bitwise_scalar(
        dim in 1usize..40,
        n_rows in 0usize..24, // covers block tails 0..=7 twice over
        flat_seed in prop::collection::vec(-50.0f32..50.0, 0..1),
        shuffle in 0usize..1000,
    ) {
        let _ = flat_seed;
        let n = n_rows;
        let flat: Vec<f32> = (0..n * dim)
            .map(|i| ((i * 2654435761 + shuffle) % 4093) as f32 * 0.037 - 75.0)
            .collect();
        let q: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.31).sin() * 20.0).collect();
        // ids in a scrambled (non-monotone) order to exercise the gather
        let mut ids: Vec<u32> = (0..n as u32).collect();
        if n > 1 {
            for i in 0..n {
                ids.swap(i, (i * 7 + shuffle) % n);
            }
        }
        let mut out = vec![0.0f32; n];
        sq_dist_block(&q, &flat, dim, &ids, &mut out);
        for (j, &id) in ids.iter().enumerate() {
            let want = sq_dist(&q, &flat[id as usize * dim..(id as usize + 1) * dim]);
            prop_assert_eq!(
                out[j].to_bits(), want.to_bits(),
                "row {} (id {}) differs from scalar: {} vs {}", j, id, out[j], want
            );
        }
    }

    #[test]
    fn matvec_is_bitwise_scalar(
        dim in 1usize..40,
        m in 0usize..12,
        phase in 0usize..1000,
    ) {
        let a: Vec<f64> = (0..m * dim)
            .map(|i| ((i + phase) as f64 * 0.618).sin() * 3.0)
            .collect();
        let x: Vec<f32> = (0..dim).map(|i| (i as f32 * 0.47).cos() * 10.0).collect();
        let mut out = vec![0.0f64; m];
        matvec(&a, dim, &x, &mut out);
        for j in 0..m {
            let want = dot_f64(&a[j * dim..(j + 1) * dim], &x);
            prop_assert_eq!(out[j].to_bits(), want.to_bits(), "row {} differs", j);
        }
    }
}
