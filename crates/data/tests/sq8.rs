//! Property tests of the SQ8 quantized pre-filter: the lower bound must
//! never exceed the exact squared distance (the soundness the pruning
//! contract rests on), and every compiled SIMD arm of the bound scan —
//! and of the exact kernels it gates — must be bit-identical to its
//! scalar reference.

use dblsh_data::dataset::sq_dist;
use dblsh_data::sq8::{lower_bound, lower_bound_block, lower_bound_scalar};
use dblsh_data::{Sq8Grid, Sq8Query, Sq8Store};
use proptest::prelude::*;

/// Deterministic pseudo-random matrix: `n` rows of `dim` values in
/// roughly `[-scale, scale]`, with every dimension `j < constant_dims`
/// pinned to a single value (min == max grid degeneracy).
fn matrix(n: usize, dim: usize, scale: f32, constant_dims: usize, seed: usize) -> Vec<f32> {
    (0..n * dim)
        .map(|i| {
            let j = i % dim;
            if j < constant_dims {
                scale * 0.25
            } else {
                (((i * 2654435761 + seed) % 8191) as f32 / 8191.0 - 0.5) * 2.0 * scale
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness: for every row the grid was learned from,
    /// `lower_bound <= sq_dist` — across tiny and huge coordinate
    /// scales, degenerate constant dimensions, and queries far outside
    /// the learned range.
    #[test]
    fn lower_bound_never_exceeds_exact(
        dim in 1usize..48,
        n in 1usize..24,
        scale_exp in -6i32..7,
        constant_dims in 0usize..4,
        q_offset in -3.0f32..3.0,
        seed in 0usize..1000,
    ) {
        let scale = 10.0f32.powi(scale_exp);
        let constant_dims = constant_dims.min(dim);
        let flat = matrix(n, dim, scale, constant_dims, seed);
        let store = Sq8Store::learn_and_build(dim, &flat);
        // Queries both inside and well outside the learned box.
        let q: Vec<f32> = (0..dim)
            .map(|j| ((j + seed) as f32 * 0.61).sin() * scale * (1.0 + q_offset.abs()) + q_offset * scale)
            .collect();
        let mut prep = Sq8Query::empty();
        store.prepare_query(&q, &mut prep);
        for id in 0..n as u32 {
            prop_assert!(!store.is_clamped(id), "learned rows never clamp");
            let bound = lower_bound(&prep, store.codes_row(id));
            let exact = sq_dist(&q, &flat[id as usize * dim..(id as usize + 1) * dim]);
            prop_assert!(
                bound <= exact,
                "row {}: bound {} exceeds exact {} (dim={}, scale={})",
                id, bound, exact, dim, scale
            );
        }
    }

    /// Every compiled arm of the bound scan returns bit-identical
    /// results — the pre-filter's prune/keep decisions cannot depend on
    /// which CPU the query ran on.
    #[test]
    fn lower_bound_arms_are_bitwise_identical(
        dim in 1usize..48,
        n in 1usize..16,
        seed in 0usize..1000,
    ) {
        let flat = matrix(n, dim, 20.0, 0, seed);
        let store = Sq8Store::learn_and_build(dim, &flat);
        let q: Vec<f32> = (0..dim).map(|j| ((j + seed) as f32 * 0.37).cos() * 25.0).collect();
        let mut prep = Sq8Query::empty();
        store.prepare_query(&q, &mut prep);
        for id in 0..n as u32 {
            let codes = store.codes_row(id);
            let scalar = lower_bound_scalar(&prep, codes);
            prop_assert_eq!(lower_bound(&prep, codes).to_bits(), scalar.to_bits());
            #[cfg(target_arch = "x86_64")]
            {
                prop_assert_eq!(
                    dblsh_data::sq8::x86::lower_bound_sse2(&prep, codes).to_bits(),
                    scalar.to_bits(),
                    "sse2 arm diverged at row {}", id
                );
                if is_x86_feature_detected!("avx2") {
                    prop_assert_eq!(
                        dblsh_data::sq8::x86::lower_bound_avx2(&prep, codes).to_bits(),
                        scalar.to_bits(),
                        "avx2 arm diverged at row {}", id
                    );
                }
            }
            #[cfg(target_arch = "aarch64")]
            prop_assert_eq!(
                dblsh_data::sq8::neon::lower_bound_neon(&prep, codes).to_bits(),
                scalar.to_bits(),
                "neon arm diverged at row {}", id
            );
        }
    }

    /// The batched bound scan (the hot-path entry point, one dispatch per
    /// block) is bitwise-identical to the per-row dispatcher, arm by arm,
    /// and forces clamped rows to `0.0`.
    #[test]
    fn lower_bound_block_matches_per_row(
        dim in 1usize..48,
        n in 1usize..16,
        seed in 0usize..1000,
    ) {
        let flat = matrix(n, dim, 20.0, 0, seed);
        let mut store = Sq8Store::learn_and_build(dim, &flat);
        let clamp_row: Vec<f32> = (0..dim).map(|_| 1e7).collect();
        store.push(&clamp_row);
        let q: Vec<f32> = (0..dim).map(|j| ((j + seed) as f32 * 0.53).sin() * 25.0).collect();
        let mut prep = Sq8Query::empty();
        store.prepare_query(&q, &mut prep);
        let mut ids: Vec<u32> = (0..store.len() as u32).rev().collect();
        ids.push(0); // duplicate id: block entries need not be unique
        let mut got = Vec::new();
        lower_bound_block(&prep, &store, &ids, &mut got);
        prop_assert_eq!(got.len(), ids.len());
        for (j, &id) in ids.iter().enumerate() {
            let want = if store.is_clamped(id) { 0.0 } else { lower_bound(&prep, store.codes_row(id)) };
            prop_assert_eq!(got[j].to_bits(), want.to_bits(), "block row {} (id {})", j, id);
        }
        prop_assert_eq!(got[0].to_bits(), 0.0f32.to_bits(), "clamped row must bound to 0");
        let mut scalar = vec![0.0f32; ids.len()];
        dblsh_data::sq8::lower_bound_block_scalar(&prep, &store, &ids, &mut scalar);
        #[cfg(target_arch = "x86_64")]
        {
            let mut arm = vec![0.0f32; ids.len()];
            dblsh_data::sq8::x86::lower_bound_block_sse2(&prep, &store, &ids, &mut arm);
            for j in 0..ids.len() {
                prop_assert_eq!(arm[j].to_bits(), scalar[j].to_bits(), "sse2 block row {}", j);
            }
            if is_x86_feature_detected!("avx2") {
                dblsh_data::sq8::x86::lower_bound_block_avx2(&prep, &store, &ids, &mut arm);
                for j in 0..ids.len() {
                    prop_assert_eq!(arm[j].to_bits(), scalar[j].to_bits(), "avx2 block row {}", j);
                }
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            let mut arm = vec![0.0f32; ids.len()];
            dblsh_data::sq8::neon::lower_bound_block_neon(&prep, &store, &ids, &mut arm);
            for j in 0..ids.len() {
                prop_assert_eq!(arm[j].to_bits(), scalar[j].to_bits(), "neon block row {}", j);
            }
        }
    }

    /// Every compiled arm of the exact kernels stays bitwise equal to the
    /// scalar reference (the canonical-answer byte-identity contract).
    #[test]
    fn exact_kernel_arms_are_bitwise_identical(
        dim in 1usize..40,
        n in 0usize..12,
        seed in 0usize..1000,
    ) {
        use dblsh_data::kernels::{dot_f64, matvec_scalar, sq_dist_block_scalar};
        let flat = matrix(n.max(1), dim, 30.0, 0, seed);
        let q: Vec<f32> = (0..dim).map(|j| ((j + seed) as f32 * 0.23).sin() * 15.0).collect();
        let ids: Vec<u32> = (0..n as u32).rev().collect();
        let mut want = vec![0.0f32; n];
        sq_dist_block_scalar(&q, &flat, dim, &ids, &mut want);
        let mut got = vec![0.0f32; n];
        #[cfg(target_arch = "x86_64")]
        {
            dblsh_data::kernels::x86::sq_dist_block_sse2(&q, &flat, dim, &ids, &mut got);
            for j in 0..n {
                prop_assert_eq!(got[j].to_bits(), want[j].to_bits(), "sse2 row {}", j);
            }
            if is_x86_feature_detected!("avx2") {
                dblsh_data::kernels::x86::sq_dist_block_avx2(&q, &flat, dim, &ids, &mut got);
                for j in 0..n {
                    prop_assert_eq!(got[j].to_bits(), want[j].to_bits(), "avx2 row {}", j);
                }
                let a: Vec<f64> = (0..n * dim).map(|i| ((i + seed) as f64 * 0.41).sin()).collect();
                let mut mv = vec![0.0f64; n];
                matvec_scalar(&a, dim, &q, &mut mv);
                let mut mv_avx = vec![0.0f64; n];
                dblsh_data::kernels::x86::matvec_avx2(&a, dim, &q, &mut mv_avx);
                for j in 0..n {
                    prop_assert_eq!(mv_avx[j].to_bits(), mv[j].to_bits(), "matvec avx2 row {}", j);
                    prop_assert_eq!(
                        dblsh_data::kernels::x86::dot_f64_avx2(&a[j * dim..(j + 1) * dim], &q).to_bits(),
                        dot_f64(&a[j * dim..(j + 1) * dim], &q).to_bits(),
                        "dot avx2 row {}", j
                    );
                }
            }
        }
        #[cfg(target_arch = "aarch64")]
        {
            dblsh_data::kernels::neon::sq_dist_block_neon(&q, &flat, dim, &ids, &mut got);
            for j in 0..n {
                prop_assert_eq!(got[j].to_bits(), want[j].to_bits(), "neon row {}", j);
            }
        }
        #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
        {
            let _ = &mut got;
        }
    }
}

/// Rows pushed after the grid was learned can fall outside the box: they
/// must be flagged clamped (the pre-filter then assigns them bound 0 and
/// never prunes them), while in-range pushes stay prunable.
#[test]
fn out_of_range_pushes_are_clamped_and_never_pruned() {
    let flat = matrix(8, 4, 1.0, 0, 7);
    let mut store = Sq8Store::learn_and_build(4, &flat);
    store.push(&[1e6, 0.0, 0.0, 0.0]);
    assert!(store.is_clamped(8), "far-out row must be flagged");
    store.push(&flat[..4]);
    assert!(!store.is_clamped(9), "in-range row stays prunable");
}

/// The grid itself is order-independent: learning over a permuted copy
/// of the rows yields the identical grid (the property the sharded
/// full-dataset grid injection relies on).
#[test]
fn grid_learning_is_order_independent() {
    let dim = 6;
    let flat = matrix(50, dim, 12.0, 1, 3);
    let grid = Sq8Grid::learn(dim, &flat);
    let mut rows: Vec<&[f32]> = flat.chunks(dim).collect();
    rows.reverse();
    rows.rotate_left(17);
    let permuted: Vec<f32> = rows.concat();
    let back = Sq8Grid::learn(dim, &permuted);
    assert_eq!(grid.min(), back.min());
    assert_eq!(grid.step(), back.step());
}
