//! Ignored-by-default microbenchmark isolating the pre-filter bound scan
//! against the exact kernel it gates.  Run with:
//! `cargo test -q -p dblsh-data --release --test bound_micro -- --ignored --nocapture`

use dblsh_data::dataset::sq_dist;
use dblsh_data::kernels::{
    canonical_verify_keys, canonical_verify_keys_prefiltered, sq_dist_block,
};
use dblsh_data::sq8::lower_bound_block;
use dblsh_data::{Sq8Query, Sq8Store};
use std::time::Instant;

#[test]
#[ignore]
fn bound_scan_vs_exact_kernel() {
    for (n, dim) in [
        (5000usize, 24usize),
        (50000, 128),
        (300000, 96),
        (500000, 128),
    ] {
        run(n, dim);
    }
}

fn run(n: usize, dim: usize) {
    let flat: Vec<f32> = (0..n * dim)
        .map(|i| (((i * 2654435761 + 7) % 8191) as f32 / 8191.0 - 0.5) * 120.0)
        .collect();
    let store = Sq8Store::learn_and_build(dim, &flat);
    let q: Vec<f32> = (0..dim).map(|j| (j as f32 * 0.61).sin() * 30.0).collect();
    let mut prep = Sq8Query::empty();
    store.prepare_query(&q, &mut prep);

    // Distinct pseudo-random blocks per iteration, so large datasets are
    // measured with realistic (cache-cold) row access instead of re-scanning
    // one hot block.
    // Enough distinct blocks that large datasets cannot stay cache-hot
    // across iterations.
    let nblocks = (n / 150).clamp(64, 2048);
    let blocks: Vec<Vec<u32>> = (0..nblocks)
        .map(|b| {
            let mut ids: Vec<u32> = (0..195u32)
                .map(|i| ((b * 195 + i as usize) * 2654435761 % n) as u32)
                .collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        })
        .collect();
    let rows: usize = blocks.iter().map(|b| b.len()).sum();

    let iters = (400_000 / rows).max(8);
    let mut bounds = Vec::new();
    let t = Instant::now();
    for it in 0..iters {
        for b in &blocks {
            lower_bound_block(&prep, &store, b, &mut bounds);
        }
        std::hint::black_box(it);
    }
    let bound_ns = t.elapsed().as_nanos() as f64 / (iters * rows) as f64;

    let mut dists = vec![0.0f32; 256];
    let t = Instant::now();
    for it in 0..iters {
        for b in &blocks {
            dists.resize(b.len(), 0.0);
            sq_dist_block(&q, &flat, dim, b, &mut dists);
        }
        std::hint::black_box(it);
    }
    let exact_ns = t.elapsed().as_nanos() as f64 / (iters * rows) as f64;

    let mut acc = 0.0f32;
    let t = Instant::now();
    for _ in 0..iters {
        for b in &blocks {
            for &id in b {
                acc += sq_dist(&q, &flat[id as usize * dim..(id as usize + 1) * dim]);
            }
        }
    }
    let scalar_ns = t.elapsed().as_nanos() as f64 / (iters * rows) as f64;

    println!(
        "n={n} dim={dim}: per-row bound scan {bound_ns:.1} ns, exact block kernel {exact_ns:.1} ns, \
         scalar exact {scalar_ns:.1} ns (acc {acc:.1}, arch {:?})",
        dblsh_data::kernels::simd_arch()
    );

    // Full staging pipelines, prefiltered vs plain, at a threshold chosen
    // to prune about 2/3 of each block (the rate smoke observes).
    let mut all = Vec::new();
    for b in &blocks {
        for &id in b {
            all.push(sq_dist(
                &q,
                &flat[id as usize * dim..(id as usize + 1) * dim],
            ));
        }
    }
    all.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let threshold = all[all.len() / 3];

    let mut block_scratch = Vec::new();
    let mut dists2 = Vec::new();
    let mut survivors = Vec::new();
    let mut keys = Vec::new();
    let mut pruned_total = 0usize;
    let t = Instant::now();
    for _ in 0..iters {
        for b in &blocks {
            block_scratch.clear();
            block_scratch.extend_from_slice(b);
            let (p, _s) = canonical_verify_keys_prefiltered(
                &q,
                &flat,
                dim,
                &store,
                &prep,
                threshold,
                &mut block_scratch,
                &mut dists2,
                &mut survivors,
                &mut keys,
                |id| id,
            );
            pruned_total += p;
        }
    }
    let on_ns = t.elapsed().as_nanos() as f64 / (iters * rows) as f64;

    let t = Instant::now();
    for _ in 0..iters {
        for b in &blocks {
            block_scratch.clear();
            block_scratch.extend_from_slice(b);
            canonical_verify_keys(
                &q,
                &flat,
                dim,
                &mut block_scratch,
                &mut dists2,
                &mut keys,
                |id| id,
            );
        }
    }
    let off_ns = t.elapsed().as_nanos() as f64 / (iters * rows) as f64;
    println!(
        "  staging per-row: prefilter ON {on_ns:.1} ns, OFF {off_ns:.1} ns \
         ({:.1}% pruned, speedup {:.2}x)",
        pruned_total as f64 / (iters * rows) as f64 * 100.0,
        off_ns / on_ns
    );
}
