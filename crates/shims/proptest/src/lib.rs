//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses: range strategies over the primitive numeric types, tuples,
//! `prop::collection::vec`, `prop_map`, `prop_oneof!`, and the
//! `proptest! { ... }` test macro with `ProptestConfig::with_cases`.
//!
//! Semantics: each `#[test]` inside `proptest!` runs `cases` times with
//! inputs sampled from its strategies by a per-test deterministic RNG
//! (seeded from the test's name), and `prop_assert*` behaves like the
//! corresponding `assert*`. No shrinking is performed — on failure the
//! panic message carries the sampled inputs' debug representation via the
//! standard assert formatting instead.

use rand::prelude::*;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// A generator of test inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous unions (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe boxed strategy.
pub struct BoxedStrategy<T>(Box<dyn ErasedStrategy<T>>);

trait ErasedStrategy<T> {
    fn erased_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.erased_generate(rng)
    }
}

/// Uniform choice among alternatives of the same value type.
pub struct Union<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!alternatives.is_empty(), "prop_oneof! needs an alternative");
        Union { alternatives }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.alternatives.len());
        self.alternatives[i].generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A constant strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f32, f64, usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// The number of cases a strategy-driven `vec` length may take.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `prop::collection::vec`: a `Vec` of values from `elem`, with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod bool {
    use super::*;

    /// `prop::bool::ANY`: a uniformly random boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The any-boolean strategy value, mirroring proptest's
    /// `prop::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = crate::Bool;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            rng.gen_range(0usize..2) == 1
        }
    }
}

/// Alias so the `bool` module above can name the primitive it shadows.
type Bool = bool;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Construct the per-test RNG (used by the `proptest!` expansion, which
/// cannot name the `rand` crate from the test crate's namespace).
pub fn new_rng(seed: u64) -> TestRng {
    TestRng::seed_from_u64(seed)
}

/// Stable 64-bit seed from a test name, so every proptest function gets
/// its own deterministic input stream.
pub fn seed_from_name(name: &str) -> u64 {
    let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        acc ^= b as u64;
        acc = acc.wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond); };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*); };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

/// The test harness macro: runs each contained `#[test]` `cases` times
/// with inputs sampled from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng: $crate::TestRng =
                    $crate::new_rng($crate::seed_from_name(stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod prelude {
    pub use crate::collection as prop_collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    };

    /// The `prop::` namespace (`prop::collection::vec(...)`,
    /// `prop::bool::ANY`).
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_sample_in_bounds(
            x in -5.0f64..5.0,
            n in 1usize..10,
            v in prop::collection::vec(0.0f32..1.0, 2..6),
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&f| (0.0..1.0).contains(&f)));
        }

        #[test]
        fn tuples_and_oneof(
            pair in (0u32..5, -1.0f64..1.0),
            mixed in prop_oneof![(-20i32..20).prop_map(|v| v as f64 * 0.5), -100.0f64..100.0],
        ) {
            prop_assert!(pair.0 < 5);
            prop_assert!((-1.0..1.0).contains(&pair.1));
            prop_assert!((-100.0..100.0).contains(&mixed));
        }
    }
}
