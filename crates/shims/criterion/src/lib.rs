//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. The build environment has no access to crates.io, so this crate
//! provides a compatible surface (`Criterion`, benchmark groups,
//! `black_box`, `criterion_group!`/`criterion_main!`) backed by a simple
//! measure-and-report harness: each benchmark is warmed up, then timed
//! over adaptively sized batches, and the median ns/iteration is printed.
//! It has no statistical machinery, plots, or baselines — it exists so
//! `cargo bench` compiles, runs, and gives a usable first-order number.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spend per benchmark (split across samples).
const TARGET_TOTAL: Duration = Duration::from_millis(600);
const WARMUP: Duration = Duration::from_millis(120);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _crit: self,
            group: name.to_string(),
            sample_size: 50,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        run_one(name, 50, &mut f);
    }
}

pub struct BenchmarkGroup<'a> {
    _crit: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.group, id.label),
            self.sample_size,
            &mut f,
        );
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(
            &format!("{}/{}", self.group, id.label),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Passed to the benchmark closure; `iter` runs and times the payload.
pub struct Bencher {
    samples: Vec<f64>,
    sample_count: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: find an iteration count that takes a measurable slice.
        let mut iters_per_sample = 1u64;
        let warm_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let elapsed = t.elapsed();
            if warm_start.elapsed() >= WARMUP {
                break;
            }
            if elapsed * (self.sample_count as u32).max(1) < TARGET_TOTAL {
                iters_per_sample = iters_per_sample.saturating_mul(2);
            } else {
                break;
            }
        }
        let per_sample = TARGET_TOTAL / self.sample_count as u32;
        // Timed samples.
        for _ in 0..self.sample_count {
            let t = Instant::now();
            let mut n = 0u64;
            loop {
                for _ in 0..iters_per_sample {
                    black_box(f());
                }
                n += iters_per_sample;
                if t.elapsed() >= per_sample {
                    break;
                }
            }
            self.samples
                .push(t.elapsed().as_secs_f64() * 1e9 / n as f64);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_count: sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort_by(f64::total_cmp);
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!(
        "{label:<40} median {} [{} .. {}]",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_produces_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: 3,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(1);
            acc
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn id_formats() {
        let id = BenchmarkId::new("window_query", 5u64);
        assert_eq!(id.label, "window_query/5");
        let id2 = BenchmarkId::from_parameter(42);
        assert_eq!(id2.label, "42");
    }
}
