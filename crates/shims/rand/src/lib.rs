//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses. The build environment has no access to crates.io, so the few
//! primitives the workspace needs — a seedable `StdRng`, uniform
//! `gen`/`gen_range`, and `shuffle` — are implemented here from scratch.
//!
//! `StdRng` is xoshiro256++ seeded through SplitMix64: not the ChaCha12
//! generator of the real crate, but deterministic in the seed, fast, and
//! of far more than sufficient statistical quality for the synthetic
//! datasets and projection families generated in this repository. Streams
//! differ from the real `rand`, so seeds reproduce *within* this
//! workspace, not across implementations.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling interface, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over the type's standard domain
    /// (`[0, 1)` for floats, full range for integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`lo..hi` or `lo..=hi`).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from a `u64` seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The workspace's standard generator: xoshiro256++.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges sampleable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                self.start + (self.end - self.start) * <$t as Standard>::sample(rng)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                lo + (hi - lo) * <$t as Standard>::sample(rng)
            }
        }
    )*};
}

float_range!(f32, f64);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

/// In-place Fisher–Yates shuffling for slices.
pub trait SliceRandom {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}

pub mod rngs {
    pub use crate::StdRng;
}

pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom, Standard, StdRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let a = rng.gen_range(-3.0f64..7.0);
            assert!((-3.0..7.0).contains(&a));
            let b = rng.gen_range(0usize..13);
            assert!(b < 13);
            let c = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&c));
            let d = rng.gen_range(1.5f32..=2.5);
            assert!((1.5..=2.5).contains(&d));
        }
    }

    #[test]
    fn mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, (0..100).collect::<Vec<u32>>());
    }
}
