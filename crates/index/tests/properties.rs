//! Property-based tests: the R*-tree must agree with brute force on every
//! query, for every construction path (incremental, bulk, mixed).

use dblsh_index::{RStarTree, Rect};
use proptest::prelude::*;

/// Strategy: a small point cloud in [-50, 50]^dim.
fn points(dim: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(-50.0f64..50.0, dim..=dim), 1..max_n)
}

fn brute_window(pts: &[Vec<f64>], lo: &[f64], hi: &[f64]) -> Vec<u32> {
    let mut out: Vec<u32> = pts
        .iter()
        .enumerate()
        .filter(|(_, p)| p.iter().enumerate().all(|(i, &v)| lo[i] <= v && v <= hi[i]))
        .map(|(i, _)| i as u32)
        .collect();
    out.sort_unstable();
    out
}

fn brute_knn(pts: &[Vec<f64>], q: &[f64], k: usize) -> Vec<f64> {
    let mut d: Vec<f64> = pts
        .iter()
        .map(|p| p.iter().zip(q).map(|(a, b)| (a - b) * (a - b)).sum())
        .collect();
    d.sort_by(f64::total_cmp);
    d.truncate(k);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_equals_brute_force_incremental(
        pts in points(3, 200),
        corner in prop::collection::vec(-60.0f64..60.0, 3),
        extent in prop::collection::vec(0.0f64..60.0, 3),
    ) {
        let mut t = RStarTree::new(3);
        for (i, p) in pts.iter().enumerate() {
            t.insert(i as u32, p);
        }
        t.check_invariants();
        let hi: Vec<f64> = corner.iter().zip(&extent).map(|(c, e)| c + e).collect();
        let w = Rect::new(&corner, &hi);
        let mut got = t.window_all(&w);
        got.sort_unstable();
        prop_assert_eq!(got, brute_window(&pts, &corner, &hi));
    }

    #[test]
    fn window_equals_brute_force_bulk(
        pts in points(2, 400),
        corner in prop::collection::vec(-60.0f64..60.0, 2),
        extent in prop::collection::vec(0.0f64..60.0, 2),
    ) {
        let flat: Vec<f64> = pts.iter().flatten().copied().collect();
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let t = RStarTree::bulk_load(2, &ids, &flat);
        t.check_invariants();
        let hi: Vec<f64> = corner.iter().zip(&extent).map(|(c, e)| c + e).collect();
        let w = Rect::new(&corner, &hi);
        let mut got = t.window_all(&w);
        got.sort_unstable();
        prop_assert_eq!(got, brute_window(&pts, &corner, &hi));
    }

    #[test]
    fn knn_distances_equal_brute_force(
        pts in points(4, 150),
        q in prop::collection::vec(-60.0f64..60.0, 4),
        k in 1usize..20,
    ) {
        let mut t = RStarTree::new(4);
        for (i, p) in pts.iter().enumerate() {
            t.insert(i as u32, p);
        }
        let got: Vec<f64> = t.k_nearest(&q, k).into_iter().map(|(_, d)| d).collect();
        let want = brute_knn(&pts, &q, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9, "{} vs {}", g, w);
        }
    }

    #[test]
    fn removal_keeps_remaining_set_queryable(
        pts in points(2, 120),
        keep_mod in 2usize..5,
    ) {
        let mut t = RStarTree::new(2);
        for (i, p) in pts.iter().enumerate() {
            t.insert(i as u32, p);
        }
        for (i, p) in pts.iter().enumerate() {
            if i % keep_mod != 0 {
                prop_assert!(t.remove(i as u32, p));
            }
        }
        t.check_invariants();
        let survivors: Vec<u32> = (0..pts.len())
            .filter(|i| i % keep_mod == 0)
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(t.len(), survivors.len());
        let w = Rect::new(&[-50.0, -50.0], &[50.0, 50.0]);
        let mut got = t.window_all(&w);
        got.sort_unstable();
        prop_assert_eq!(got, survivors);
    }

    #[test]
    fn nearest_iter_is_sorted_prefix_closed(
        pts in points(3, 150),
        q in prop::collection::vec(-60.0f64..60.0, 3),
    ) {
        let mut t = RStarTree::new(3);
        for (i, p) in pts.iter().enumerate() {
            t.insert(i as u32, p);
        }
        let all: Vec<(u32, f64)> = t.nearest_iter(&q).collect();
        prop_assert_eq!(all.len(), pts.len());
        for w in all.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }
}
