//! Property-based tests: the flat-layout R*-tree must agree with brute
//! force on every query, for every construction path (incremental, bulk,
//! mixed), and bulk-built vs insert-grown trees must stay interchangeable
//! under interleaved insert/remove.

use dblsh_index::{OwnedCoords, RStarTree, Rect};
use proptest::prelude::*;

/// Strategy: a small point cloud in [-50, 50]^dim.
fn points(dim: usize, max_n: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-50.0f32..50.0, dim..=dim), 1..max_n)
}

fn source(pts: &[Vec<f32>], dim: usize) -> OwnedCoords {
    let flat: Vec<f32> = pts.iter().flatten().copied().collect();
    OwnedCoords::from_flat(dim, flat)
}

fn brute_window(pts: &[Vec<f32>], lo: &[f64], hi: &[f64]) -> Vec<u32> {
    let mut out: Vec<u32> = pts
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            p.iter()
                .enumerate()
                .all(|(i, &v)| lo[i] <= v as f64 && v as f64 <= hi[i])
        })
        .map(|(i, _)| i as u32)
        .collect();
    out.sort_unstable();
    out
}

fn brute_knn(pts: &[Vec<f32>], q: &[f64], k: usize) -> Vec<f64> {
    let mut d: Vec<f64> = pts
        .iter()
        .map(|p| {
            p.iter()
                .zip(q)
                .map(|(&a, &b)| (a as f64 - b) * (a as f64 - b))
                .sum()
        })
        .collect();
    d.sort_by(f64::total_cmp);
    d.truncate(k);
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn window_equals_brute_force_incremental(
        pts in points(3, 200),
        corner in prop::collection::vec(-60.0f64..60.0, 3),
        extent in prop::collection::vec(0.0f64..60.0, 3),
    ) {
        let src = source(&pts, 3);
        let mut t = RStarTree::new(3);
        for i in 0..pts.len() {
            t.insert(&src, i as u32);
        }
        t.check_invariants(&src);
        let hi: Vec<f64> = corner.iter().zip(&extent).map(|(c, e)| c + e).collect();
        let w = Rect::new(&corner, &hi);
        let mut got = t.window_all(&src, &w);
        got.sort_unstable();
        prop_assert_eq!(got, brute_window(&pts, &corner, &hi));
    }

    #[test]
    fn window_equals_brute_force_bulk(
        pts in points(2, 400),
        corner in prop::collection::vec(-60.0f64..60.0, 2),
        extent in prop::collection::vec(0.0f64..60.0, 2),
    ) {
        let src = source(&pts, 2);
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let t = RStarTree::bulk_load(&src, &ids);
        t.check_invariants(&src);
        let hi: Vec<f64> = corner.iter().zip(&extent).map(|(c, e)| c + e).collect();
        let w = Rect::new(&corner, &hi);
        let mut got = t.window_all(&src, &w);
        got.sort_unstable();
        prop_assert_eq!(got, brute_window(&pts, &corner, &hi));
    }

    #[test]
    fn knn_distances_equal_brute_force(
        pts in points(4, 150),
        q in prop::collection::vec(-60.0f64..60.0, 4),
        k in 1usize..20,
    ) {
        let src = source(&pts, 4);
        let mut t = RStarTree::new(4);
        for i in 0..pts.len() {
            t.insert(&src, i as u32);
        }
        let got: Vec<f64> = t.k_nearest(&src, &q, k).into_iter().map(|(_, d)| d).collect();
        let want = brute_knn(&pts, &q, k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert!((g - w).abs() < 1e-9, "{} vs {}", g, w);
        }
    }

    #[test]
    fn removal_keeps_remaining_set_queryable(
        pts in points(2, 120),
        keep_mod in 2usize..5,
    ) {
        let src = source(&pts, 2);
        let mut t = RStarTree::new(2);
        for i in 0..pts.len() {
            t.insert(&src, i as u32);
        }
        for i in 0..pts.len() {
            if i % keep_mod != 0 {
                prop_assert!(t.remove(&src, i as u32));
            }
        }
        t.check_invariants(&src);
        let survivors: Vec<u32> = (0..pts.len())
            .filter(|i| i % keep_mod == 0)
            .map(|i| i as u32)
            .collect();
        prop_assert_eq!(t.len(), survivors.len());
        let w = Rect::new(&[-50.0, -50.0], &[50.0, 50.0]);
        let mut got = t.window_all(&src, &w);
        got.sort_unstable();
        prop_assert_eq!(got, survivors);
    }

    #[test]
    fn nearest_iter_is_sorted_prefix_closed(
        pts in points(3, 150),
        q in prop::collection::vec(-60.0f64..60.0, 3),
    ) {
        let src = source(&pts, 3);
        let mut t = RStarTree::new(3);
        for i in 0..pts.len() {
            t.insert(&src, i as u32);
        }
        let all: Vec<(u32, f64)> = t.nearest_iter(&src, &q).collect();
        prop_assert_eq!(all.len(), pts.len());
        for w in all.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    /// A bulk-built tree and an insert-grown tree over the same prefix
    /// must stay interchangeable through the same tail of interleaved
    /// inserts and removes: identical point sets under `window_all`, and
    /// identical `k_nearest` distances.
    #[test]
    fn bulk_and_grown_agree_after_interleaved_updates(
        pts in points(3, 160),
        split_frac in 0.2f64..0.8,
        remove_mod in 2usize..5,
        q in prop::collection::vec(-60.0f64..60.0, 3),
    ) {
        let src = source(&pts, 3);
        let n = pts.len();
        let split = ((n as f64 * split_frac) as usize).clamp(1, n);
        let prefix_ids: Vec<u32> = (0..split as u32).collect();

        let mut bulk = RStarTree::bulk_load(&src, &prefix_ids);
        let mut grown = RStarTree::new(3);
        for &id in &prefix_ids {
            grown.insert(&src, id);
        }

        // Interleave: insert the tail, removing every remove_mod-th
        // prefix point along the way — in identical order on both trees.
        for row in split..n {
            bulk.insert(&src, row as u32);
            grown.insert(&src, row as u32);
            let victim = (row - split) as u32;
            if victim.is_multiple_of(remove_mod as u32) && (victim as usize) < split {
                prop_assert!(bulk.remove(&src, victim));
                prop_assert!(grown.remove(&src, victim));
            }
        }
        bulk.check_invariants(&src);
        grown.check_invariants(&src);
        prop_assert_eq!(bulk.len(), grown.len());

        let w = Rect::new(&[-50.0, -50.0, -50.0], &[50.0, 50.0, 50.0]);
        let mut a = bulk.window_all(&src, &w);
        let mut b = grown.window_all(&src, &w);
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "live point sets diverge");

        let da: Vec<f64> = bulk.k_nearest(&src, &q, 10).into_iter().map(|(_, d)| d).collect();
        let db: Vec<f64> = grown.k_nearest(&src, &q, 10).into_iter().map(|(_, d)| d).collect();
        prop_assert_eq!(da.len(), db.len());
        for (x, y) in da.iter().zip(&db) {
            prop_assert!((x - y).abs() < 1e-9, "knn distances diverge: {} vs {}", x, y);
        }
    }

    /// The structure reported by `stats` stays consistent with the
    /// logical contents, and the flat layout never allocates coordinate
    /// storage inside the tree (structure bytes are independent of how
    /// large the coordinate values are).
    #[test]
    fn stats_count_live_entries(
        pts in points(2, 200),
    ) {
        let src = source(&pts, 2);
        let ids: Vec<u32> = (0..pts.len() as u32).collect();
        let t = RStarTree::bulk_load(&src, &ids);
        let s = t.stats();
        prop_assert_eq!(s.leaf_entries, pts.len());
        prop_assert_eq!(s.structure_bytes, t.approx_memory());
        // Every tree byte is structure: ids (4 bytes each) plus inner
        // bounds — there is no per-point coordinate storage, which lives
        // in the CoordSource.
        let coord_bytes = std::mem::size_of_val(src.flat());
        prop_assert!(s.structure_bytes < coord_bytes + 4096,
            "structure {} suspiciously large vs coords {}", s.structure_bytes, coord_bytes);
    }
}
