//! An R*-tree multi-dimensional index, built from scratch for the DB-LSH
//! reproduction.
//!
//! The paper indexes every K-dimensional projected space with an R*-tree
//! ("we simply choose the R*-Tree as our index due to an ocean of
//! optimizations... DB-LSH adopts the bulk-loading strategy"). This crate
//! provides exactly the operations the paper's algorithms need:
//!
//! * **STR bulk loading** ([`RStarTree::bulk_load`]) — used in the indexing
//!   phase (Section IV-B);
//! * **window queries** as *pausable cursors* ([`RStarTree::window`]) — the
//!   query phase issues `W(G_i(q), w0 r)` and must be able to stop after
//!   `2tL + 1` verified points (Algorithm 1), so enumeration is lazy;
//! * **incremental insertion and deletion** with the R\* heuristics
//!   (forced reinsertion, margin-driven split) for dynamic workloads;
//! * **best-first incremental nearest-neighbor search**
//!   ([`RStarTree::nearest_iter`], Hjaltason–Samet) — the substrate for the
//!   PM-LSH baseline, which retrieves candidates in ascending projected
//!   distance.
//!
//! Coordinates are `f64` and the dimension is a runtime parameter (the
//! projected dimensionality `K` is chosen per dataset). NaN coordinates are
//! rejected at the API boundary.

mod bulk;
mod query;
mod rect;
mod tree;

pub use query::{NearestIter, WindowCursor};
pub use rect::Rect;
pub use tree::RStarTree;
