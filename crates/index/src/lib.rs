//! An R*-tree multi-dimensional index, built from scratch for the DB-LSH
//! reproduction.
//!
//! The paper indexes every K-dimensional projected space with an R*-tree
//! ("we simply choose the R*-Tree as our index due to an ocean of
//! optimizations... DB-LSH adopts the bulk-loading strategy"). This crate
//! provides exactly the operations the paper's algorithms need:
//!
//! * **STR bulk loading** ([`RStarTree::bulk_load`]) — used in the indexing
//!   phase (Section IV-B);
//! * **window queries** as *pausable cursors* ([`RStarTree::window`]) — the
//!   query phase issues `W(G_i(q), w0 r)` and must be able to stop after
//!   `2tL + 1` verified points (Algorithm 1), so enumeration is lazy;
//! * **incremental insertion and deletion** with the R\* heuristics
//!   (forced reinsertion, margin-driven split) for dynamic workloads;
//! * **best-first incremental nearest-neighbor search**
//!   ([`RStarTree::nearest_iter`], Hjaltason–Samet) — the substrate for the
//!   PM-LSH baseline, which retrieves candidates in ascending projected
//!   distance.
//!
//! # Flat layout
//!
//! The tree stores **ids, not coordinates**. Leaf entries are bare `u32`
//! ids resolved through a [`CoordSource`] (a borrowed view over one
//! contiguous, possibly strided, coordinate matrix — see
//! [`StridedCoords`]); inner nodes keep their children's bounding boxes
//! inline in a per-node flat `f32` arena. Compared to a boxed-`Rect`
//! layout this removes every per-entry heap allocation, makes leaf scans
//! cache-linear, and lets `L` trees share one projection store instead of
//! each owning a copy of its column.
//!
//! Stored coordinates and bounds are `f32` (the precision of the `f32`
//! datasets they derive from — half the memory traffic of a leaf scan),
//! while query geometry ([`Rect`] windows, distances, R\* heuristics)
//! is computed in `f64` over values cast up from storage. The dimension
//! is a runtime parameter (the projected dimensionality `K` is chosen
//! per dataset). API contracts
//! (finite coordinates, matching dimensionality, stable ids) are
//! documented per method and enforced with `debug_assert!`; release
//! builds trust callers that validate at their own boundary, as
//! `dblsh-core` does through its typed `DbLshError`.

mod bulk;
mod coords;
mod query;
mod rect;
mod tree;

pub use bulk::str_order;
pub use coords::{CoordSource, OwnedCoords, StridedCoords};
pub use query::{NearestIter, WindowCursor};
pub use rect::Rect;
pub use tree::{RStarTree, TreeStats};
