//! Query operations: pausable window cursors, best-first incremental
//! nearest-neighbor iteration (Hjaltason–Samet distance browsing), and
//! convenience wrappers.
//!
//! All cursors run over the flat node arena: the descent touches only the
//! inline bounds runs of inner nodes and the dense id arrays of leaves —
//! no rectangle is cloned and nothing is allocated per step (the only
//! allocations are the cursor's own stack/heap, once per query).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::coords::CoordSource;
use crate::rect::{geom, Rect};
use crate::tree::{child_bounds, RStarTree};

impl RStarTree {
    /// Lazy window query: yields the id of every point inside `window`,
    /// in index order. The cursor borrows the tree, the coordinate
    /// source and the window; it can be dropped at any time, which is
    /// how Algorithm 1 of the paper stops after `2tL + 1` verified
    /// candidates. (Coordinates of a yielded id are one
    /// [`CoordSource::coords`] call away for callers that need them.)
    ///
    /// Contract (debug-checked): `window.dim() == self.dim() == src.dim()`.
    pub fn window<'t, S: CoordSource>(
        &'t self,
        src: &'t S,
        window: &'t Rect,
    ) -> WindowCursor<'t, S> {
        debug_assert_eq!(window.dim(), self.dim(), "window dimensionality mismatch");
        debug_assert_eq!(src.dim(), self.dim(), "source dimensionality mismatch");
        let mut cursor = WindowCursor {
            tree: self,
            src,
            lo: window.lo(),
            hi: window.hi(),
            hits: Vec::new(),
            hit_at: 0,
            stack: Vec::new(),
        };
        // A single-leaf tree scans the root directly; taller trees start
        // with the root on the inner-node stack.
        if self.nodes[self.root].is_leaf() {
            cursor.scan_leaf(self.root, false);
        } else {
            cursor.stack.push((self.root, 0));
        }
        cursor
    }

    /// Eager window query, mainly for tests.
    pub fn window_all<S: CoordSource>(&self, src: &S, window: &Rect) -> Vec<u32> {
        self.window(src, window).collect()
    }

    /// Best-first incremental nearest-neighbor iterator from `q`; yields
    /// `(id, squared_distance)` in ascending distance order.
    ///
    /// Contract (debug-checked): `q.len() == self.dim() == src.dim()` and
    /// `q` is finite.
    pub fn nearest_iter<'t, S: CoordSource>(&'t self, src: &'t S, q: &[f64]) -> NearestIter<'t, S> {
        debug_assert_eq!(q.len(), self.dim(), "query dimensionality mismatch");
        debug_assert_eq!(src.dim(), self.dim(), "source dimensionality mismatch");
        debug_assert!(q.iter().all(|v| v.is_finite()), "non-finite query");
        let mut heap = BinaryHeap::new();
        if !self.is_empty() {
            heap.push(Reverse(HeapItem {
                dist2: 0.0,
                kind: ItemKind::Node(self.root),
            }));
        }
        NearestIter {
            tree: self,
            src,
            q: q.into(),
            heap,
            dists: Vec::new(),
        }
    }

    /// The `k` nearest points to `q` as `(id, squared_distance)`,
    /// ascending.
    ///
    /// Unlike [`RStarTree::nearest_iter`]`.take(k)` — which must feed
    /// every point of every opened leaf through the global priority
    /// queue to stay resumable — this runs classic bounded best-first
    /// search: a min-heap frontier of unopened nodes and a `k`-element
    /// max-heap of results, with leaf points and subtrees beyond the
    /// current k-th distance pruned instead of enqueued. Same answers,
    /// a fraction of the heap traffic.
    pub fn k_nearest<S: CoordSource>(&self, src: &S, q: &[f64], k: usize) -> Vec<(u32, f64)> {
        debug_assert_eq!(q.len(), self.dim(), "query dimensionality mismatch");
        debug_assert_eq!(src.dim(), self.dim(), "source dimensionality mismatch");
        debug_assert!(q.iter().all(|v| v.is_finite()), "non-finite query");
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let dim = self.dim();
        let mut frontier: BinaryHeap<Reverse<HeapItem>> = BinaryHeap::new();
        frontier.push(Reverse(HeapItem {
            dist2: 0.0,
            kind: ItemKind::Node(self.root),
        }));
        // Max-heap of the best k points seen; its top is the pruning bound.
        let mut result: BinaryHeap<HeapItem> = BinaryHeap::with_capacity(k + 1);
        while let Some(Reverse(item)) = frontier.pop() {
            if result.len() == k && result.peek().is_some_and(|t| item.dist2 >= t.dist2) {
                break; // the frontier is ascending: nothing can improve
            }
            let ItemKind::Node(idx) = item.kind else {
                continue; // the frontier holds nodes only
            };
            let n = &self.nodes[idx];
            if n.is_leaf() {
                for &c in &n.children {
                    let d2 = sq_dist(q, src.coords(c));
                    if result.len() < k {
                        result.push(HeapItem {
                            dist2: d2,
                            kind: ItemKind::Point(c),
                        });
                    } else if result.peek().is_some_and(|t| d2 < t.dist2) {
                        result.pop();
                        result.push(HeapItem {
                            dist2: d2,
                            kind: ItemKind::Point(c),
                        });
                    }
                }
            } else {
                let bound = if result.len() == k {
                    result.peek().map_or(f64::INFINITY, |t| t.dist2)
                } else {
                    f64::INFINITY
                };
                for (&c, b) in n.children.iter().zip(n.bounds.chunks_exact(2 * dim)) {
                    let (blo, bhi) = b.split_at(dim);
                    let md2 = geom::min_dist2(blo, bhi, q);
                    if md2 < bound {
                        frontier.push(Reverse(HeapItem {
                            dist2: md2,
                            kind: ItemKind::Node(c as usize),
                        }));
                    }
                }
            }
        }
        // into_sorted_vec is ascending by the same Ord the heap used.
        result
            .into_sorted_vec()
            .into_iter()
            .filter_map(|item| match item.kind {
                // The result heap holds points only.
                ItemKind::Point(id) => Some((id, item.dist2)),
                ItemKind::Node(_) => None,
            })
            .collect()
    }

    /// Iterate over every stored point (depth-first order).
    pub fn iter_points<'t, S: CoordSource>(
        &'t self,
        src: &'t S,
    ) -> impl Iterator<Item = (u32, &'t [f32])> + 't {
        let mut stack = vec![(self.root, 0usize)];
        std::iter::from_fn(move || loop {
            let &(node, pos) = stack.last()?;
            let n = &self.nodes[node];
            if pos >= n.children.len() {
                stack.pop();
                continue;
            }
            if let Some(top) = stack.last_mut() {
                top.1 += 1;
            }
            let c = n.children[pos];
            if n.is_leaf() {
                return Some((c, src.coords(c)));
            }
            stack.push((c as usize, 0));
        })
    }
}

/// Lazy depth-first window-query cursor. See [`RStarTree::window`].
///
/// The cursor works one leaf at a time: when the descent reaches a leaf
/// whose bounds intersect the window, the whole leaf is scanned in one
/// tight loop into a hit buffer (so the containment tests and the
/// scattered coordinate reads stay hot, uninterrupted by the caller),
/// and `next()` then drains the buffer. Leaves whose bounds are *fully
/// contained* in the window skip the coordinate reads entirely — every
/// id is a hit by construction. Pausing granularity is one leaf
/// (at most `max_entries` points scanned beyond where the caller stops).
///
/// Callers that verify candidates in blocks consume whole leaves through
/// [`WindowCursor::next_batch`] instead of the per-id [`Iterator`]; both
/// interfaces share the same traversal state and can be mixed.
pub struct WindowCursor<'t, S> {
    tree: &'t RStarTree,
    src: &'t S,
    lo: &'t [f64],
    hi: &'t [f64],
    /// Hits of the current leaf; `hit_at` is the drain position.
    hits: Vec<u32>,
    hit_at: usize,
    /// (inner node index, next entry position) — explicit DFS stack so
    /// the enumeration can pause between leaves.
    stack: Vec<(usize, usize)>,
}

impl<S: CoordSource> WindowCursor<'_, S> {
    /// Advance to the next leaf with in-window points and return all of
    /// them at once — the batch interface the blocked verification
    /// pipeline drains (one tree leaf per batch, so the pause granularity
    /// is identical to the per-id [`Iterator`] path). Returns `None` once
    /// the window is exhausted. Ids not yet drained through `next()` are
    /// included in the first batch.
    pub fn next_batch(&mut self) -> Option<&[u32]> {
        while self.hit_at >= self.hits.len() {
            self.descend_to_next_leaf()?;
        }
        let at = self.hit_at;
        self.hit_at = self.hits.len();
        Some(&self.hits[at..])
    }

    /// Walk the DFS stack to the next leaf intersecting the window and
    /// scan it into the hit buffer. `None` when the traversal is done.
    fn descend_to_next_leaf(&mut self) -> Option<()> {
        let dim = self.tree.dim();
        loop {
            let &(node, pos) = self.stack.last()?;
            let n = &self.tree.nodes[node];
            if pos >= n.children.len() {
                self.stack.pop();
                continue;
            }
            if let Some(top) = self.stack.last_mut() {
                top.1 += 1;
            }
            let (blo, bhi) = child_bounds(n, dim, pos);
            if geom::window_intersects(self.lo, self.hi, blo, bhi) {
                let c = n.children[pos] as usize;
                let child = &self.tree.nodes[c];
                if child.is_leaf() {
                    let contained = geom::window_contains_box(self.lo, self.hi, blo, bhi);
                    self.scan_leaf(c, contained);
                    return Some(());
                }
                self.stack.push((c, 0));
            }
        }
    }

    /// Refill the hit buffer from leaf `idx`.
    fn scan_leaf(&mut self, idx: usize, fully_contained: bool) {
        let n = &self.tree.nodes[idx];
        self.hits.clear();
        self.hit_at = 0;
        if fully_contained {
            self.hits.extend_from_slice(&n.children);
        } else {
            self.hits.extend(
                n.children.iter().copied().filter(|&id| {
                    geom::window_contains_point(self.lo, self.hi, self.src.coords(id))
                }),
            );
        }
    }
}

impl<S: CoordSource> Iterator for WindowCursor<'_, S> {
    type Item = u32;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            // Fast path: drain the current leaf's hits.
            if let Some(&id) = self.hits.get(self.hit_at) {
                self.hit_at += 1;
                return Some(id);
            }
            // Descend to the next leaf whose bounds intersect the window.
            self.descend_to_next_leaf()?;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ItemKind {
    Node(usize),
    Point(u32),
}

#[derive(Debug, Clone, Copy)]
struct HeapItem {
    dist2: f64,
    kind: ItemKind,
}

impl PartialEq for HeapItem {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2 && self.kind == other.kind
    }
}
impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via Reverse; points before nodes at equal distance so a
        // point at distance exactly MINDIST of an unopened node is emitted
        // without opening the node.
        self.dist2.total_cmp(&other.dist2).then_with(|| {
            let rank = |k: &ItemKind| match k {
                ItemKind::Point(_) => 0,
                ItemKind::Node(_) => 1,
            };
            rank(&self.kind).cmp(&rank(&other.kind))
        })
    }
}

/// Best-first incremental NN iterator. See [`RStarTree::nearest_iter`].
pub struct NearestIter<'t, S> {
    tree: &'t RStarTree,
    src: &'t S,
    q: Box<[f64]>,
    heap: BinaryHeap<Reverse<HeapItem>>,
    /// Scratch for one leaf's distances (see the expansion two-phase).
    dists: Vec<f64>,
}

impl<S: CoordSource> Iterator for NearestIter<'_, S> {
    type Item = (u32, f64);

    fn next(&mut self) -> Option<Self::Item> {
        let dim = self.tree.dim();
        while let Some(Reverse(item)) = self.heap.pop() {
            match item.kind {
                ItemKind::Point(id) => return Some((id, item.dist2)),
                ItemKind::Node(idx) => {
                    let n = &self.tree.nodes[idx];
                    let q: &[f64] = &self.q;
                    self.heap.reserve(n.children.len());
                    if n.is_leaf() {
                        // Two phases: first a pure distance pass whose loads
                        // are independent (the out-of-order core overlaps the
                        // scattered store reads), then the heap pushes.
                        self.dists.clear();
                        self.dists
                            .extend(n.children.iter().map(|&c| sq_dist(q, self.src.coords(c))));
                        for (&c, &d) in n.children.iter().zip(&self.dists) {
                            self.heap.push(Reverse(HeapItem {
                                dist2: d,
                                kind: ItemKind::Point(c),
                            }));
                        }
                    } else {
                        for (&c, b) in n.children.iter().zip(n.bounds.chunks_exact(2 * dim)) {
                            let (blo, bhi) = b.split_at(dim);
                            self.heap.push(Reverse(HeapItem {
                                dist2: geom::min_dist2(blo, bhi, q),
                                kind: ItemKind::Node(c as usize),
                            }));
                        }
                    }
                }
            }
        }
        None
    }
}

#[inline]
fn sq_dist(a: &[f64], b: &[f32]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 4;
    let split = chunks * 4;
    let (a4, ar) = a.split_at(split);
    let (b4, br) = b.split_at(split);
    let mut s0 = 0.0;
    let mut s1 = 0.0;
    let mut s2 = 0.0;
    let mut s3 = 0.0;
    for (ca, cb) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        let d0 = ca[0] - cb[0] as f64;
        let d1 = ca[1] - cb[1] as f64;
        let d2 = ca[2] - cb[2] as f64;
        let d3 = ca[3] - cb[3] as f64;
        s0 += d0 * d0;
        s1 += d1 * d1;
        s2 += d2 * d2;
        s3 += d3 * d3;
    }
    for (&x, &y) in ar.iter().zip(br) {
        let d = x - y as f64;
        s0 += d * d;
    }
    (s0 + s1) + (s2 + s3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::OwnedCoords;

    fn build_grid(side: usize) -> (OwnedCoords, RStarTree) {
        let mut src = OwnedCoords::new(2);
        let mut t = RStarTree::new(2);
        for x in 0..side {
            for y in 0..side {
                let id = src.push(&[x as f32, y as f32]);
                t.insert(&src, id);
            }
        }
        (src, t)
    }

    #[test]
    fn window_matches_brute_force() {
        let (src, t) = build_grid(15);
        let w = Rect::new(&[2.5, 3.0], &[7.0, 9.5]);
        let mut got = t.window_all(&src, &w);
        got.sort_unstable();
        let mut want = Vec::new();
        for x in 0..15u32 {
            for y in 0..15u32 {
                if (2.5..=7.0).contains(&(x as f64)) && (3.0..=9.5).contains(&(y as f64)) {
                    want.push(x * 15 + y);
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn window_cursor_is_lazy_and_resumable() {
        let (src, t) = build_grid(10);
        let w = Rect::new(&[0.0, 0.0], &[9.0, 9.0]);
        let mut cursor = t.window(&src, &w);
        let first: Vec<u32> = cursor.by_ref().take(5).collect();
        assert_eq!(first.len(), 5);
        let rest: Vec<u32> = cursor.collect();
        assert_eq!(first.len() + rest.len(), 100);
        // no overlap between the two batches
        for id in &first {
            assert!(!rest.contains(id));
        }
    }

    #[test]
    fn next_batch_covers_window_in_leaf_chunks() {
        let (src, t) = build_grid(15);
        let w = Rect::new(&[2.5, 3.0], &[7.0, 9.5]);
        let mut want = t.window_all(&src, &w);
        want.sort_unstable();
        let mut got: Vec<u32> = Vec::new();
        let mut cursor = t.window(&src, &w);
        let mut batches = 0;
        while let Some(batch) = cursor.next_batch() {
            assert!(!batch.is_empty(), "batches are never empty");
            got.extend_from_slice(batch);
            batches += 1;
        }
        got.sort_unstable();
        assert_eq!(got, want);
        assert!(batches >= 1);
        // mixed consumption: a few ids via next(), the rest via batches
        let mut cursor = t.window(&src, &w);
        let mut mixed: Vec<u32> = cursor.by_ref().take(3).collect();
        while let Some(batch) = cursor.next_batch() {
            mixed.extend_from_slice(batch);
        }
        mixed.sort_unstable();
        assert_eq!(mixed, want);
    }

    #[test]
    fn empty_window_yields_nothing() {
        let (src, t) = build_grid(5);
        let w = Rect::new(&[100.0, 100.0], &[101.0, 101.0]);
        assert!(t.window_all(&src, &w).is_empty());
    }

    #[test]
    fn window_on_empty_tree() {
        let src = OwnedCoords::new(2);
        let t = RStarTree::new(2);
        let w = Rect::new(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(t.window_all(&src, &w).is_empty());
    }

    #[test]
    fn nearest_iter_ascending_and_complete() {
        let (src, t) = build_grid(12);
        let q = [4.3, 7.8];
        let got: Vec<(u32, f64)> = t.nearest_iter(&src, &q).collect();
        assert_eq!(got.len(), 144);
        for pair in got.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "distances not ascending");
        }
        // first returned is the true NN
        let (id, d2) = got[0];
        assert_eq!(id, 4 * 12 + 8);
        assert!((d2 - (0.3f64 * 0.3 + 0.2 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let (src, t) = build_grid(9);
        let q = [3.1, 3.1];
        let got = t.k_nearest(&src, &q, 7);
        let mut brute: Vec<(u32, f64)> = (0..81u32)
            .map(|id| {
                let x = (id / 9) as f64;
                let y = (id % 9) as f64;
                (id, (x - q[0]).powi(2) + (y - q[1]).powi(2))
            })
            .collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1));
        let got_d: Vec<f64> = got.iter().map(|&(_, d)| d).collect();
        let want_d: Vec<f64> = brute[..7].iter().map(|&(_, d)| d).collect();
        for (g, w) in got_d.iter().zip(want_d.iter()) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn iter_points_covers_everything() {
        let (src, t) = build_grid(8);
        let mut ids: Vec<u32> = t.iter_points(&src).map(|(id, _)| id).collect();
        ids.sort_unstable();
        let want: Vec<u32> = (0..64).collect();
        assert_eq!(ids, want);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let (src, t) = build_grid(3);
        assert_eq!(t.k_nearest(&src, &[0.0, 0.0], 100).len(), 9);
    }
}
