//! Query operations: pausable window cursors, best-first incremental
//! nearest-neighbor iteration (Hjaltason–Samet distance browsing), and
//! convenience wrappers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::rect::Rect;
use crate::tree::{Entry, RStarTree};

impl RStarTree {
    /// Lazy window query: yields `(id, coords)` of every point inside
    /// `window`, in index order. The cursor borrows the tree; it can be
    /// dropped at any time, which is how Algorithm 1 of the paper stops
    /// after `2tL + 1` verified candidates.
    pub fn window<'t>(&'t self, window: &Rect) -> WindowCursor<'t> {
        assert_eq!(window.dim(), self.dim(), "window dimensionality mismatch");
        WindowCursor {
            tree: self,
            window: window.clone(),
            stack: vec![(self.root, 0)],
        }
    }

    /// Eager window query, mainly for tests.
    pub fn window_all(&self, window: &Rect) -> Vec<u32> {
        self.window(window).map(|(id, _)| id).collect()
    }

    /// Best-first incremental nearest-neighbor iterator from `q`; yields
    /// `(id, squared_distance)` in ascending distance order.
    pub fn nearest_iter<'t>(&'t self, q: &[f64]) -> NearestIter<'t> {
        assert_eq!(q.len(), self.dim(), "query dimensionality mismatch");
        assert!(q.iter().all(|v| v.is_finite()), "non-finite query rejected");
        let mut heap = BinaryHeap::new();
        if !self.is_empty() {
            heap.push(Reverse(HeapItem {
                dist2: 0.0,
                kind: ItemKind::Node(self.root),
            }));
        }
        NearestIter {
            tree: self,
            q: q.into(),
            heap,
        }
    }

    /// The `k` nearest points to `q` as `(id, squared_distance)`.
    pub fn k_nearest(&self, q: &[f64], k: usize) -> Vec<(u32, f64)> {
        self.nearest_iter(q).take(k).collect()
    }

    /// Iterate over every stored point (depth-first order).
    pub fn iter_points(&self) -> impl Iterator<Item = (u32, &[f64])> + '_ {
        let mut stack = vec![(self.root, 0usize)];
        std::iter::from_fn(move || loop {
            let &(node, pos) = stack.last()?;
            let n = &self.nodes[node];
            if pos >= n.entries.len() {
                stack.pop();
                continue;
            }
            stack.last_mut().expect("non-empty").1 += 1;
            match &n.entries[pos] {
                Entry::Point { id, coords } => return Some((*id, &coords[..])),
                Entry::Child { node: c, .. } => stack.push((*c, 0)),
            }
        })
    }
}

/// Lazy depth-first window-query cursor. See [`RStarTree::window`].
pub struct WindowCursor<'t> {
    tree: &'t RStarTree,
    window: Rect,
    /// (node index, next entry position) — explicit DFS stack so the
    /// enumeration can pause between items.
    stack: Vec<(usize, usize)>,
}

impl<'t> Iterator for WindowCursor<'t> {
    type Item = (u32, &'t [f64]);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let &(node, pos) = self.stack.last()?;
            let n = &self.tree.nodes[node];
            if pos >= n.entries.len() {
                self.stack.pop();
                continue;
            }
            self.stack.last_mut().expect("non-empty").1 += 1;
            match &n.entries[pos] {
                Entry::Point { id, coords } => {
                    if self.window.contains_point(coords) {
                        return Some((*id, coords));
                    }
                }
                Entry::Child { node: c, rect } => {
                    if self.window.intersects(rect) {
                        self.stack.push((*c, 0));
                    }
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum ItemKind {
    Node(usize),
    Point(u32),
}

#[derive(Debug, Clone, Copy)]
struct HeapItem {
    dist2: f64,
    kind: ItemKind,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist2 == other.dist2 && self.kind == other.kind
    }
}
impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap via Reverse; points before nodes at equal distance so a
        // point at distance exactly MINDIST of an unopened node is emitted
        // without opening the node.
        self.dist2.total_cmp(&other.dist2).then_with(|| {
            let rank = |k: &ItemKind| match k {
                ItemKind::Point(_) => 0,
                ItemKind::Node(_) => 1,
            };
            rank(&self.kind).cmp(&rank(&other.kind))
        })
    }
}

/// Best-first incremental NN iterator. See [`RStarTree::nearest_iter`].
pub struct NearestIter<'t> {
    tree: &'t RStarTree,
    q: Box<[f64]>,
    heap: BinaryHeap<Reverse<HeapItem>>,
}

impl Iterator for NearestIter<'_> {
    type Item = (u32, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(Reverse(item)) = self.heap.pop() {
            match item.kind {
                ItemKind::Point(id) => return Some((id, item.dist2)),
                ItemKind::Node(idx) => {
                    for e in &self.tree.nodes[idx].entries {
                        let hi = match e {
                            Entry::Point { id, coords } => HeapItem {
                                dist2: sq_dist(&self.q, coords),
                                kind: ItemKind::Point(*id),
                            },
                            Entry::Child { node, rect } => HeapItem {
                                dist2: rect.min_dist2(&self.q),
                                kind: ItemKind::Node(*node),
                            },
                        };
                        self.heap.push(Reverse(hi));
                    }
                }
            }
        }
        None
    }
}

#[inline]
fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_grid(side: usize) -> RStarTree {
        let mut t = RStarTree::new(2);
        for x in 0..side {
            for y in 0..side {
                t.insert((x * side + y) as u32, &[x as f64, y as f64]);
            }
        }
        t
    }

    #[test]
    fn window_matches_brute_force() {
        let t = build_grid(15);
        let w = Rect::new(&[2.5, 3.0], &[7.0, 9.5]);
        let mut got = t.window_all(&w);
        got.sort_unstable();
        let mut want = Vec::new();
        for x in 0..15u32 {
            for y in 0..15u32 {
                if (2.5..=7.0).contains(&(x as f64)) && (3.0..=9.5).contains(&(y as f64)) {
                    want.push(x * 15 + y);
                }
            }
        }
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn window_cursor_is_lazy_and_resumable() {
        let t = build_grid(10);
        let w = Rect::new(&[0.0, 0.0], &[9.0, 9.0]);
        let mut cursor = t.window(&w);
        let first: Vec<u32> = cursor.by_ref().take(5).map(|(id, _)| id).collect();
        assert_eq!(first.len(), 5);
        let rest: Vec<u32> = cursor.map(|(id, _)| id).collect();
        assert_eq!(first.len() + rest.len(), 100);
        // no overlap between the two batches
        for id in &first {
            assert!(!rest.contains(id));
        }
    }

    #[test]
    fn empty_window_yields_nothing() {
        let t = build_grid(5);
        let w = Rect::new(&[100.0, 100.0], &[101.0, 101.0]);
        assert!(t.window_all(&w).is_empty());
    }

    #[test]
    fn window_on_empty_tree() {
        let t = RStarTree::new(2);
        let w = Rect::new(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(t.window_all(&w).is_empty());
    }

    #[test]
    fn nearest_iter_ascending_and_complete() {
        let t = build_grid(12);
        let q = [4.3, 7.8];
        let got: Vec<(u32, f64)> = t.nearest_iter(&q).collect();
        assert_eq!(got.len(), 144);
        for pair in got.windows(2) {
            assert!(pair[0].1 <= pair[1].1, "distances not ascending");
        }
        // first returned is the true NN
        let (id, d2) = got[0];
        assert_eq!(id, 4 * 12 + 8);
        assert!((d2 - (0.3f64 * 0.3 + 0.2 * 0.2)).abs() < 1e-12);
    }

    #[test]
    fn k_nearest_matches_brute_force() {
        let t = build_grid(9);
        let q = [3.1, 3.1];
        let got = t.k_nearest(&q, 7);
        let mut brute: Vec<(u32, f64)> = (0..81u32)
            .map(|id| {
                let x = (id / 9) as f64;
                let y = (id % 9) as f64;
                (id, (x - q[0]).powi(2) + (y - q[1]).powi(2))
            })
            .collect();
        brute.sort_by(|a, b| a.1.total_cmp(&b.1));
        let got_d: Vec<f64> = got.iter().map(|&(_, d)| d).collect();
        let want_d: Vec<f64> = brute[..7].iter().map(|&(_, d)| d).collect();
        for (g, w) in got_d.iter().zip(want_d.iter()) {
            assert!((g - w).abs() < 1e-12);
        }
    }

    #[test]
    fn iter_points_covers_everything() {
        let t = build_grid(8);
        let mut ids: Vec<u32> = t.iter_points().map(|(id, _)| id).collect();
        ids.sort_unstable();
        let want: Vec<u32> = (0..64).collect();
        assert_eq!(ids, want);
    }

    #[test]
    fn k_larger_than_len_returns_all() {
        let t = build_grid(3);
        assert_eq!(t.k_nearest(&[0.0, 0.0], 100).len(), 9);
    }
}
