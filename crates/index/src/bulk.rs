//! Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al., ICDE 1997).
//!
//! The paper constructs its L R*-trees with bulk loading ("DB-LSH adopts
//! the bulk-loading strategy to construct R*-Trees, which is a more
//! efficient strategy than conventional insertion strategies" —
//! Section VI-B.2). STR packs points into fully-filled leaves by recursive
//! slab partitioning, then packs each level into the one above it. Leaves
//! are runs of bare point ids; only inner levels materialize bounds, in
//! each node's inline arena.

use crate::coords::CoordSource;
use crate::tree::{Node, RStarTree};

impl RStarTree {
    /// Bulk-load a tree over the points `ids`, with coordinates resolved
    /// through `src`. Roughly an order of magnitude faster than repeated
    /// insertion and yields better-packed nodes.
    ///
    /// Contract (debug-checked): ids are unique and every id resolves to
    /// finite coordinates of dimensionality `src.dim()`.
    pub fn bulk_load<S: CoordSource>(src: &S, ids: &[u32]) -> Self {
        Self::bulk_load_with_capacity(src, ids, crate::tree::DEFAULT_MAX_ENTRIES)
    }

    /// [`RStarTree::bulk_load`] with a custom node fan-out (clamped to
    /// the R\* minimum of 4).
    pub fn bulk_load_with_capacity<S: CoordSource>(
        src: &S,
        ids: &[u32],
        max_entries: usize,
    ) -> Self {
        debug_assert!(
            ids.iter()
                .all(|&id| src.coords(id).iter().all(|v| v.is_finite())),
            "non-finite coordinate in bulk load"
        );
        debug_assert!(
            {
                let mut sorted = ids.to_vec();
                sorted.sort_unstable();
                sorted.windows(2).all(|w| w[0] != w[1])
            },
            "duplicate id in bulk load"
        );
        let mut tree = RStarTree::with_node_capacity(src.dim(), max_entries);
        let max_entries = max_entries.max(4);
        let dim = src.dim();
        let n = ids.len();
        if n == 0 {
            return tree;
        }
        // The freshly constructed tree owns one empty leaf (arena slot 0)
        // as its root; we build a fresh root below, so free the slot for
        // later splits to reuse.
        tree.dealloc(0);

        // Partition the ids into leaf groups.
        let mut order: Vec<u32> = ids.to_vec();
        let mut groups: Vec<std::ops::Range<usize>> = Vec::with_capacity(n / max_entries + 1);
        str_partition(&mut order, 0, src, dim, max_entries, &mut groups, 0);

        // Build leaves: a leaf is just its run of ids. Within a leaf the
        // ids are sorted ascending so a leaf scan walks the shared
        // coordinate store monotonically (prefetch-friendly) instead of
        // in space-filling order.
        let mut level_nodes: Vec<usize> = Vec::with_capacity(groups.len());
        for g in &groups {
            let mut leaf_ids = order[g.clone()].to_vec();
            leaf_ids.sort_unstable();
            level_nodes.push(tree.alloc(Node {
                level: 0,
                children: leaf_ids,
                bounds: Vec::new(),
            }));
        }

        // Pack each level into the next until a single root remains.
        let (mut lo, mut hi): (Vec<f32>, Vec<f32>) = (Vec::new(), Vec::new());
        let mut level = 0u32;
        while level_nodes.len() > 1 {
            level += 1;
            let mut upper: Vec<usize> = Vec::with_capacity(level_nodes.len() / max_entries + 1);
            for chunk in level_nodes.chunks(max_entries) {
                let mut node = Node {
                    level,
                    children: Vec::with_capacity(chunk.len()),
                    bounds: Vec::with_capacity(chunk.len() * 2 * dim),
                };
                for &c in chunk {
                    tree.node_mbr_into(src, c, &mut lo, &mut hi);
                    node.children.push(c as u32);
                    node.bounds.extend_from_slice(&lo);
                    node.bounds.extend_from_slice(&hi);
                }
                upper.push(tree.alloc(node));
            }
            level_nodes = upper;
        }

        tree.root = level_nodes[0];
        tree.len = n;
        tree
    }
}

/// The locality-preserving point order STR bulk loading induces: the
/// concatenation of the leaf groups [`RStarTree::bulk_load_with_capacity`]
/// would form over `ids` (same slab recursion, same `cap.max(4)` leaf
/// size), each group sorted ascending by id for determinism.
///
/// Relabeling points to this order makes every future leaf of a tree
/// bulk-loaded over the same coordinates a *contiguous run* of ids, so
/// leaf scans and candidate verification read near-sequential memory —
/// the id-space half of DB-LSH's locality-aware relabeling (`dblsh-core`
/// reorders its dataset and projection store rows to match).
///
/// Contract (debug-checked, as for bulk loading): ids are unique and
/// resolve to finite coordinates of dimensionality `src.dim()`.
pub fn str_order<S: CoordSource>(src: &S, ids: &[u32], max_entries: usize) -> Vec<u32> {
    debug_assert!(
        ids.iter()
            .all(|&id| src.coords(id).iter().all(|v| v.is_finite())),
        "non-finite coordinate in str_order"
    );
    debug_assert!(
        {
            let mut sorted = ids.to_vec();
            sorted.sort_unstable();
            sorted.windows(2).all(|w| w[0] != w[1])
        },
        "duplicate id in str_order"
    );
    let cap = max_entries.max(4);
    let mut order: Vec<u32> = ids.to_vec();
    let mut groups: Vec<std::ops::Range<usize>> = Vec::with_capacity(ids.len() / cap + 1);
    str_partition(&mut order, 0, src, src.dim(), cap, &mut groups, 0);
    for g in &groups {
        order[g.clone()].sort_unstable();
    }
    order
}

/// Recursively sort-and-tile `order` (point ids) into contiguous
/// leaf-sized ranges appended to `groups`. `base` is the offset of `order`
/// within the full ordering array.
fn str_partition<S: CoordSource>(
    order: &mut [u32],
    axis: usize,
    src: &S,
    dim: usize,
    cap: usize,
    groups: &mut Vec<std::ops::Range<usize>>,
    base: usize,
) {
    let n = order.len();
    if n <= cap {
        groups.push(base..base + n);
        return;
    }
    order.sort_unstable_by(|&a, &b| src.coords(a)[axis].total_cmp(&src.coords(b)[axis]));
    if axis + 1 == dim {
        // Last axis: emit consecutive leaf-sized runs.
        let mut start = 0;
        while start < n {
            let end = (start + cap).min(n);
            groups.push(base + start..base + end);
            start = end;
        }
        return;
    }
    // Number of leaves below this subarray and slab count for this axis:
    // S = ceil(P^(1/remaining_axes)).
    let leaves = n.div_ceil(cap);
    let remaining = (dim - axis) as f64;
    let slabs = (leaves as f64).powf(1.0 / remaining).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut start = 0;
    while start < n {
        let end = (start + slab_size).min(n);
        str_partition(
            &mut order[start..end],
            axis + 1,
            src,
            dim,
            cap,
            groups,
            base + start,
        );
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::OwnedCoords;
    use crate::rect::Rect;

    fn random_source(n: usize, dim: usize, seed: u64) -> OwnedCoords {
        // xorshift-based deterministic pseudo-random coordinates
        let mut s = seed.max(1);
        let mut out = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            out.push(((s >> 11) as f64 / (1u64 << 53) as f64 * 100.0) as f32);
        }
        OwnedCoords::from_flat(dim, out)
    }

    #[test]
    fn bulk_load_empty() {
        let src = OwnedCoords::new(4);
        let t = RStarTree::bulk_load(&src, &[]);
        assert!(t.is_empty());
        t.check_invariants(&src);
    }

    #[test]
    fn bulk_load_single_point() {
        let src = OwnedCoords::from_flat(3, vec![1.0, 2.0, 3.0]);
        let t = RStarTree::bulk_load(&src, &[0]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        t.check_invariants(&src);
        assert_eq!(t.k_nearest(&src, &[0.0, 0.0, 0.0], 1), vec![(0, 14.0)]);
        // the construction-time scratch root is freed, not leaked
        assert_eq!(t.stats().nodes, 1);
    }

    #[test]
    fn bulk_load_matches_incremental_contents() {
        let n = 3000;
        let dim = 3;
        let src = random_source(n, dim, 42);
        let ids: Vec<u32> = (0..n as u32).collect();
        let bulk = RStarTree::bulk_load(&src, &ids);
        bulk.check_invariants(&src);
        assert_eq!(bulk.len(), n);

        let mut inc = RStarTree::new(dim);
        for &id in &ids {
            inc.insert(&src, id);
        }
        inc.check_invariants(&src);

        let w = Rect::new(&[10.0, 10.0, 10.0], &[60.0, 55.0, 70.0]);
        let mut a = bulk.window_all(&src, &w);
        let mut b = inc.window_all(&src, &w);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "window should catch some points");
    }

    #[test]
    fn bulk_load_is_shallower_than_incremental() {
        let n = 5000;
        let src = random_source(n, 2, 7);
        let ids: Vec<u32> = (0..n as u32).collect();
        let bulk = RStarTree::bulk_load(&src, &ids);
        // ceil(log_32(5000/32)) + 1 = 3 levels at fan-out 32
        assert!(bulk.height() <= 3, "height = {}", bulk.height());
    }

    #[test]
    fn bulk_load_then_mutate() {
        let n = 500;
        let dim = 2;
        let mut src = random_source(n, dim, 99);
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut t = RStarTree::bulk_load(&src, &ids);
        for id in 0..100u32 {
            assert!(t.remove(&src, id));
        }
        for i in 0..50u32 {
            let id = src.push(&[i as f32, -5.0]);
            t.insert(&src, id);
        }
        assert_eq!(t.len(), n - 100 + 50);
        t.check_invariants(&src);
    }

    #[test]
    fn str_order_is_a_locality_permutation() {
        let n = 2000;
        let dim = 4;
        let src = random_source(n, dim, 21);
        let ids: Vec<u32> = (0..n as u32).collect();
        let order = str_order(&src, &ids, 32);
        // a permutation of the input ids
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, ids);
        // relabeling to this order makes bulk-loaded leaves contiguous id
        // runs: rebuild coordinates in the new order and check that every
        // leaf of a fresh bulk load covers a dense id range
        let mut flat = Vec::with_capacity(n * dim);
        for &ext in &order {
            flat.extend_from_slice(src.coords(ext));
        }
        let relabeled = OwnedCoords::from_flat(dim, flat);
        let tree = RStarTree::bulk_load(&relabeled, &ids);
        tree.check_invariants(&relabeled);
        let mut covered = 0u32;
        let mut leaf_ids: Vec<u32> = Vec::new();
        let mut all: Vec<u32> = tree.iter_points(&relabeled).map(|(id, _)| id).collect();
        all.sort_unstable();
        assert_eq!(all.len(), n);
        // walk leaves via window batches over an all-covering window
        let everything = Rect::new(&[-1e9; 4], &[1e9; 4]);
        let mut cursor = tree.window(&relabeled, &everything);
        while let Some(batch) = cursor.next_batch() {
            leaf_ids.clear();
            leaf_ids.extend_from_slice(batch);
            leaf_ids.sort_unstable();
            assert_eq!(
                leaf_ids.last().unwrap() - leaf_ids[0] + 1,
                leaf_ids.len() as u32,
                "leaf ids are not a contiguous run"
            );
            covered += leaf_ids.len() as u32;
        }
        assert_eq!(covered, n as u32);
    }

    #[test]
    fn bulk_load_over_strided_view() {
        // Two interleaved 2-d point sets over one flat buffer: each
        // column window bulk-loads independently.
        let n = 200;
        let flat = random_source(n, 4, 5).flat().to_vec();
        let ids: Vec<u32> = (0..n as u32).collect();
        let left = crate::StridedCoords::new(&flat, 4, 0, 2);
        let right = crate::StridedCoords::new(&flat, 4, 2, 2);
        let tl = RStarTree::bulk_load(&left, &ids);
        let tr = RStarTree::bulk_load(&right, &ids);
        tl.check_invariants(&left);
        tr.check_invariants(&right);
        let everything = Rect::new(&[-1.0, -1.0], &[101.0, 101.0]);
        assert_eq!(tl.window_all(&left, &everything).len(), n);
        assert_eq!(tr.window_all(&right, &everything).len(), n);
    }
}
