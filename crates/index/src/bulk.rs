//! Sort-Tile-Recursive (STR) bulk loading (Leutenegger et al., ICDE 1997).
//!
//! The paper constructs its L R*-trees with bulk loading ("DB-LSH adopts
//! the bulk-loading strategy to construct R*-Trees, which is a more
//! efficient strategy than conventional insertion strategies" —
//! Section VI-B.2). STR packs points into fully-filled leaves by recursive
//! slab partitioning, then packs each level into the one above it.

use crate::tree::{Entry, Node, RStarTree};

impl RStarTree {
    /// Bulk-load a tree from `n` points stored row-major in `coords`
    /// (`coords.len() == ids.len() * dim`). Roughly an order of magnitude
    /// faster than repeated insertion and yields better-packed nodes.
    pub fn bulk_load(dim: usize, ids: &[u32], coords: &[f64]) -> Self {
        Self::bulk_load_with_capacity(dim, ids, coords, crate::tree::DEFAULT_MAX_ENTRIES)
    }

    /// [`RStarTree::bulk_load`] with a custom node fan-out.
    pub fn bulk_load_with_capacity(
        dim: usize,
        ids: &[u32],
        coords: &[f64],
        max_entries: usize,
    ) -> Self {
        assert_eq!(
            coords.len(),
            ids.len() * dim,
            "coords length must be ids.len() * dim"
        );
        assert!(
            coords.iter().all(|v| v.is_finite()),
            "non-finite coordinate rejected"
        );
        let mut tree = RStarTree::with_node_capacity(dim, max_entries);
        let n = ids.len();
        if n == 0 {
            return tree;
        }

        // Partition point indices into leaf groups.
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut groups: Vec<std::ops::Range<usize>> = Vec::with_capacity(n / max_entries + 1);
        str_partition(&mut order, 0, coords, dim, max_entries, &mut groups, 0);

        // Build leaves.
        let mut level_nodes: Vec<usize> = Vec::with_capacity(groups.len());
        // The freshly constructed tree owns one empty root (index 0); we
        // overwrite it at the end.
        for g in &groups {
            let entries: Vec<Entry> = order[g.clone()]
                .iter()
                .map(|&row| {
                    let r = row as usize;
                    Entry::Point {
                        id: ids[r],
                        coords: coords[r * dim..(r + 1) * dim].into(),
                    }
                })
                .collect();
            level_nodes.push(tree.alloc(Node { level: 0, entries }));
        }

        // Pack each level into the next until a single root remains.
        let mut level = 0u32;
        while level_nodes.len() > 1 {
            level += 1;
            let mut upper: Vec<usize> = Vec::with_capacity(level_nodes.len() / max_entries + 1);
            for chunk in level_nodes.chunks(max_entries) {
                let entries: Vec<Entry> = chunk
                    .iter()
                    .map(|&c| Entry::Child {
                        node: c,
                        rect: tree.node_mbr(c),
                    })
                    .collect();
                upper.push(tree.alloc(Node { level, entries }));
            }
            level_nodes = upper;
        }

        tree.root = level_nodes[0];
        tree.len = n;
        tree
    }
}

/// Recursively sort-and-tile `order` (point row indices) into contiguous
/// leaf-sized ranges appended to `groups`. `base` is the offset of `order`
/// within the full ordering array.
fn str_partition(
    order: &mut [u32],
    axis: usize,
    coords: &[f64],
    dim: usize,
    cap: usize,
    groups: &mut Vec<std::ops::Range<usize>>,
    base: usize,
) {
    let n = order.len();
    if n <= cap {
        groups.push(base..base + n);
        return;
    }
    order.sort_unstable_by(|&a, &b| {
        coords[a as usize * dim + axis].total_cmp(&coords[b as usize * dim + axis])
    });
    if axis + 1 == dim {
        // Last axis: emit consecutive leaf-sized runs.
        let mut start = 0;
        while start < n {
            let end = (start + cap).min(n);
            groups.push(base + start..base + end);
            start = end;
        }
        return;
    }
    // Number of leaves below this subarray and slab count for this axis:
    // S = ceil(P^(1/remaining_axes)).
    let leaves = n.div_ceil(cap);
    let remaining = (dim - axis) as f64;
    let slabs = (leaves as f64).powf(1.0 / remaining).ceil() as usize;
    let slab_size = n.div_ceil(slabs.max(1));
    let mut start = 0;
    while start < n {
        let end = (start + slab_size).min(n);
        str_partition(
            &mut order[start..end],
            axis + 1,
            coords,
            dim,
            cap,
            groups,
            base + start,
        );
        start = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    fn random_coords(n: usize, dim: usize, seed: u64) -> Vec<f64> {
        // xorshift-based deterministic pseudo-random coordinates
        let mut s = seed.max(1);
        let mut out = Vec::with_capacity(n * dim);
        for _ in 0..n * dim {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            out.push((s >> 11) as f64 / (1u64 << 53) as f64 * 100.0);
        }
        out
    }

    #[test]
    fn bulk_load_empty() {
        let t = RStarTree::bulk_load(4, &[], &[]);
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn bulk_load_single_point() {
        let t = RStarTree::bulk_load(3, &[7], &[1.0, 2.0, 3.0]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        t.check_invariants();
        assert_eq!(t.k_nearest(&[0.0, 0.0, 0.0], 1), vec![(7, 14.0)]);
    }

    #[test]
    fn bulk_load_matches_incremental_contents() {
        let n = 3000;
        let dim = 3;
        let coords = random_coords(n, dim, 42);
        let ids: Vec<u32> = (0..n as u32).collect();
        let bulk = RStarTree::bulk_load(dim, &ids, &coords);
        bulk.check_invariants();
        assert_eq!(bulk.len(), n);

        let mut inc = RStarTree::new(dim);
        for i in 0..n {
            inc.insert(i as u32, &coords[i * dim..(i + 1) * dim]);
        }
        inc.check_invariants();

        let w = Rect::new(&[10.0, 10.0, 10.0], &[60.0, 55.0, 70.0]);
        let mut a = bulk.window_all(&w);
        let mut b = inc.window_all(&w);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        assert!(!a.is_empty(), "window should catch some points");
    }

    #[test]
    fn bulk_load_is_shallower_than_incremental() {
        let n = 5000;
        let coords = random_coords(n, 2, 7);
        let ids: Vec<u32> = (0..n as u32).collect();
        let bulk = RStarTree::bulk_load(2, &ids, &coords);
        // ceil(log_32(5000/32)) + 1 = 3 levels at fan-out 32
        assert!(bulk.height() <= 3, "height = {}", bulk.height());
    }

    #[test]
    fn bulk_load_then_mutate() {
        let n = 500;
        let dim = 2;
        let coords = random_coords(n, dim, 99);
        let ids: Vec<u32> = (0..n as u32).collect();
        let mut t = RStarTree::bulk_load(dim, &ids, &coords);
        for i in 0..100usize {
            assert!(t.remove(i as u32, &coords[i * dim..(i + 1) * dim]));
        }
        for i in 0..50u32 {
            t.insert(10_000 + i, &[i as f64, -5.0]);
        }
        assert_eq!(t.len(), n - 100 + 50);
        t.check_invariants();
    }

    #[test]
    #[should_panic(expected = "coords length")]
    fn mismatched_lengths_panic() {
        RStarTree::bulk_load(2, &[0, 1], &[1.0, 2.0, 3.0]);
    }
}
