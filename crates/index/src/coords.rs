//! Coordinate resolution for id-only trees.
//!
//! The flat-layout [`crate::RStarTree`] stores **no point coordinates**:
//! leaf entries are bare `u32` ids, and every operation that needs the
//! actual position of a point resolves it through a [`CoordSource`]. This
//! is what lets one contiguous projection matrix (the `ProjStore` of
//! `dblsh-core`) back all `L` trees without a single per-entry heap
//! allocation, and what makes leaf scans cache-linear: a leaf is a run of
//! ids whose coordinates live `stride` apart in one flat buffer.
//!
//! Two ready-made sources are provided:
//!
//! * [`StridedCoords`] — a borrowed view over a row-major matrix, with an
//!   optional column offset (how a per-tree `K`-wide column window of an
//!   `n x (L*K)` projection store is expressed);
//! * [`OwnedCoords`] — an owning flat buffer, convenient for tests and
//!   standalone tree users.
//!
//! Coordinates are `f32`: the datasets this workspace indexes are `f32`
//! to begin with, so storing projections at the same precision halves
//! the memory traffic of every leaf scan without losing information the
//! input ever had. Query-side geometry (windows, distances) is computed
//! in `f64` over values cast up from the store.

/// Resolves point ids to coordinate slices.
///
/// # Contract
///
/// For as long as an id is present in a tree backed by this source,
/// `coords(id)` must keep returning the *same* finite values of length
/// [`CoordSource::dim`]. The tree caches bounding boxes derived from
/// these coordinates; a source that mutates a live id's coordinates (or
/// shrinks below an id still stored) leaves the tree internally
/// inconsistent. Violations are caught by `debug_assert!`s and
/// [`crate::RStarTree::check_invariants`], never by release-mode checks.
pub trait CoordSource {
    /// Coordinate dimensionality of every point.
    fn dim(&self) -> usize;

    /// Coordinates of point `id`, of length [`CoordSource::dim`].
    fn coords(&self, id: u32) -> &[f32];
}

impl<S: CoordSource + ?Sized> CoordSource for &S {
    #[inline]
    fn dim(&self) -> usize {
        (**self).dim()
    }

    #[inline]
    fn coords(&self, id: u32) -> &[f32] {
        (**self).coords(id)
    }
}

/// A borrowed [`CoordSource`] over a row-major `f32` matrix: point `id`
/// occupies columns `offset .. offset + dim` of row `id`, rows are
/// `stride` values wide.
///
/// With `offset = i * k, stride = l * k` this is exactly the `i`-th
/// tree's column window into an `n x (L*K)` projection store; with
/// `offset = 0, stride = dim` (see [`StridedCoords::flat`]) it is a plain
/// dense matrix.
#[derive(Debug, Clone, Copy)]
pub struct StridedCoords<'a> {
    data: &'a [f32],
    stride: usize,
    offset: usize,
    dim: usize,
}

impl<'a> StridedCoords<'a> {
    /// View over `data` with explicit geometry.
    ///
    /// # Contract
    /// `dim >= 1`, `offset + dim <= stride`, and `data.len()` is a
    /// multiple of `stride` (checked in debug builds).
    pub fn new(data: &'a [f32], stride: usize, offset: usize, dim: usize) -> Self {
        debug_assert!(dim >= 1, "zero-dimensional coordinate view");
        debug_assert!(
            offset + dim <= stride,
            "column window [{offset}, {}) exceeds row stride {stride}",
            offset + dim
        );
        debug_assert_eq!(
            data.len() % stride,
            0,
            "buffer length {} is not a whole number of {stride}-wide rows",
            data.len()
        );
        StridedCoords {
            data,
            stride,
            offset,
            dim,
        }
    }

    /// Dense view: rows are exactly `dim` wide with no offset.
    pub fn flat(dim: usize, data: &'a [f32]) -> Self {
        StridedCoords::new(data, dim, 0, dim)
    }

    /// Number of addressable points (rows).
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.stride
    }

    /// True if the view addresses no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl CoordSource for StridedCoords<'_> {
    #[inline]
    fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn coords(&self, id: u32) -> &[f32] {
        let start = id as usize * self.stride + self.offset;
        &self.data[start..start + self.dim]
    }
}

/// An owning flat [`CoordSource`]: ids are dense row indexes in insertion
/// order. The simplest way to drive a standalone [`crate::RStarTree`].
#[derive(Debug, Clone, Default)]
pub struct OwnedCoords {
    dim: usize,
    data: Vec<f32>,
}

impl OwnedCoords {
    /// Empty source of dimensionality `dim >= 1`.
    pub fn new(dim: usize) -> Self {
        debug_assert!(dim >= 1, "zero-dimensional coordinate store");
        OwnedCoords {
            dim,
            data: Vec::new(),
        }
    }

    /// Source over an existing row-major buffer
    /// (`data.len()` must be a multiple of `dim`; debug-checked).
    pub fn from_flat(dim: usize, data: Vec<f32>) -> Self {
        debug_assert!(dim >= 1, "zero-dimensional coordinate store");
        debug_assert_eq!(data.len() % dim, 0, "flat buffer length mismatch");
        OwnedCoords { dim, data }
    }

    /// Append one point, returning its id (the dense row index).
    pub fn push(&mut self, coords: &[f32]) -> u32 {
        debug_assert_eq!(coords.len(), self.dim, "coordinate dimensionality mismatch");
        let id = self.len() as u32;
        self.data.extend_from_slice(coords);
        id
    }

    /// Number of stored points.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True if no points are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The backing row-major buffer.
    #[inline]
    pub fn flat(&self) -> &[f32] {
        &self.data
    }
}

impl CoordSource for OwnedCoords {
    #[inline]
    fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    fn coords(&self, id: u32) -> &[f32] {
        let start = id as usize * self.dim;
        &self.data[start..start + self.dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_coords_roundtrip() {
        let mut s = OwnedCoords::new(3);
        assert!(s.is_empty());
        assert_eq!(s.push(&[1.0, 2.0, 3.0]), 0);
        assert_eq!(s.push(&[-1.0, 0.0, 4.5]), 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.dim(), 3);
        assert_eq!(s.coords(0), &[1.0, 2.0, 3.0]);
        assert_eq!(s.coords(1), &[-1.0, 0.0, 4.5]);
    }

    #[test]
    fn strided_column_window() {
        // 2 rows of stride 6, two 3-wide column windows
        let data: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let left = StridedCoords::new(&data, 6, 0, 3);
        let right = StridedCoords::new(&data, 6, 3, 3);
        assert_eq!(left.len(), 2);
        assert_eq!(left.coords(0), &[0.0, 1.0, 2.0]);
        assert_eq!(right.coords(0), &[3.0, 4.0, 5.0]);
        assert_eq!(left.coords(1), &[6.0, 7.0, 8.0]);
        assert_eq!(right.coords(1), &[9.0, 10.0, 11.0]);
    }

    #[test]
    fn flat_view_matches_owned() {
        let data = vec![1.0, 2.0, 3.0, 4.0];
        let v = StridedCoords::flat(2, &data);
        let o = OwnedCoords::from_flat(2, data.clone());
        assert_eq!(v.len(), o.len());
        for id in 0..2 {
            assert_eq!(v.coords(id), o.coords(id));
        }
    }

    #[test]
    fn references_delegate() {
        let o = OwnedCoords::from_flat(2, vec![5.0, 6.0]);
        let r: &OwnedCoords = &o;
        assert_eq!(CoordSource::dim(&r), 2);
        assert_eq!(CoordSource::coords(&r, 0), &[5.0, 6.0]);
    }
}
