//! The R*-tree proper: arena storage, R\* insertion (ChooseSubtree, forced
//! reinsertion, margin-driven split) and deletion with tree condensing.
//! Beckmann, Kriegel, Schneider, Seeger: "The R*-tree: an efficient and
//! robust access method for points and rectangles" (SIGMOD 1990).

use crate::rect::Rect;

/// Default maximum entries per node.
pub(crate) const DEFAULT_MAX_ENTRIES: usize = 32;

/// One entry of a node: a data point (in leaves) or a child subtree.
#[derive(Debug, Clone)]
pub(crate) enum Entry {
    Point { id: u32, coords: Box<[f64]> },
    Child { node: usize, rect: Rect },
}

impl Entry {
    #[inline]
    pub(crate) fn lo(&self, axis: usize) -> f64 {
        match self {
            Entry::Point { coords, .. } => coords[axis],
            Entry::Child { rect, .. } => rect.lo()[axis],
        }
    }

    #[inline]
    pub(crate) fn hi(&self, axis: usize) -> f64 {
        match self {
            Entry::Point { coords, .. } => coords[axis],
            Entry::Child { rect, .. } => rect.hi()[axis],
        }
    }

    pub(crate) fn to_rect(&self) -> Rect {
        match self {
            Entry::Point { coords, .. } => Rect::point(coords),
            Entry::Child { rect, .. } => rect.clone(),
        }
    }
}

#[derive(Debug)]
pub(crate) struct Node {
    /// 0 for leaves; parents of leaves are level 1, etc.
    pub(crate) level: u32,
    pub(crate) entries: Vec<Entry>,
}

/// An in-memory R*-tree over points with runtime dimensionality.
///
/// Point payloads are `u32` identifiers (row index into the owning
/// dataset / projection matrix). Duplicate coordinates and duplicate ids
/// are allowed; `remove` matches on `(id, coords)` pairs.
#[derive(Debug)]
pub struct RStarTree {
    dim: usize,
    max_entries: usize,
    min_entries: usize,
    /// Number of entries evicted by forced reinsertion (R\* uses 30% of M).
    reinsert_count: usize,
    pub(crate) nodes: Vec<Node>,
    free: Vec<usize>,
    pub(crate) root: usize,
    pub(crate) len: usize,
}

impl RStarTree {
    /// Empty tree with the default node capacity.
    pub fn new(dim: usize) -> Self {
        Self::with_node_capacity(dim, DEFAULT_MAX_ENTRIES)
    }

    /// Empty tree with a custom maximum node fan-out `max_entries >= 4`.
    pub fn with_node_capacity(dim: usize, max_entries: usize) -> Self {
        assert!(dim >= 1, "dimension must be at least 1");
        assert!(max_entries >= 4, "node capacity must be at least 4");
        let min_entries = (max_entries as f64 * 0.4).ceil() as usize;
        let reinsert_count = (max_entries as f64 * 0.3).ceil() as usize;
        RStarTree {
            dim,
            max_entries,
            min_entries,
            reinsert_count,
            nodes: vec![Node {
                level: 0,
                entries: Vec::new(),
            }],
            free: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    /// Number of points in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Coordinate dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Height of the tree: 1 for a single leaf node.
    pub fn height(&self) -> usize {
        self.nodes[self.root].level as usize + 1
    }

    /// Exact minimum bounding rectangle of the whole tree, `None` if empty.
    pub fn mbr(&self) -> Option<Rect> {
        if self.is_empty() {
            None
        } else {
            Some(self.node_mbr(self.root))
        }
    }

    pub(crate) fn alloc(&mut self, node: Node) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn dealloc(&mut self, idx: usize) {
        self.nodes[idx] = Node {
            level: u32::MAX,
            entries: Vec::new(),
        };
        self.free.push(idx);
    }

    pub(crate) fn node_mbr(&self, idx: usize) -> Rect {
        let node = &self.nodes[idx];
        let mut it = node.entries.iter();
        let first = it.next().expect("node_mbr on empty node").to_rect();
        it.fold(first, |mut acc, e| {
            match e {
                Entry::Point { coords, .. } => acc.enlarge(&Rect::point(coords)),
                Entry::Child { rect, .. } => acc.enlarge(rect),
            }
            acc
        })
    }

    fn validate_coords(&self, coords: &[f64]) {
        assert_eq!(
            coords.len(),
            self.dim,
            "coordinate dimensionality mismatch: got {}, tree is {}-d",
            coords.len(),
            self.dim
        );
        assert!(
            coords.iter().all(|v| v.is_finite()),
            "non-finite coordinate rejected"
        );
    }

    /// Insert a point with identifier `id`.
    pub fn insert(&mut self, id: u32, coords: &[f64]) {
        self.validate_coords(coords);
        let mut reinserted = vec![false; self.nodes[self.root].level as usize + 2];
        self.insert_at_level(
            Entry::Point {
                id,
                coords: coords.into(),
            },
            0,
            &mut reinserted,
        );
        self.len += 1;
    }

    /// Insert `entry` into some node at `target_level`, applying the R\*
    /// overflow treatment (one forced reinsertion per level per public
    /// operation, then splits).
    fn insert_at_level(&mut self, entry: Entry, target_level: u32, reinserted: &mut Vec<bool>) {
        let entry_rect = entry.to_rect();
        // Descend, recording the path and enlarging covering rectangles.
        let mut path: Vec<(usize, usize)> = Vec::new();
        let mut cur = self.root;
        while self.nodes[cur].level > target_level {
            let pos = self.choose_subtree(cur, &entry_rect);
            let child = match &mut self.nodes[cur].entries[pos] {
                Entry::Child { node, rect } => {
                    rect.enlarge(&entry_rect);
                    *node
                }
                Entry::Point { .. } => unreachable!("point entry in inner node"),
            };
            path.push((cur, pos));
            cur = child;
        }
        debug_assert_eq!(self.nodes[cur].level, target_level);
        self.nodes[cur].entries.push(entry);

        // Overflow treatment, bottom-up.
        let mut node = cur;
        loop {
            if self.nodes[node].entries.len() <= self.max_entries {
                break;
            }
            let level = self.nodes[node].level;
            if node != self.root && !reinserted[level as usize] {
                reinserted[level as usize] = true;
                let orphans = self.take_farthest(node);
                self.recompute_path_rects(&path);
                for e in orphans {
                    self.insert_at_level(e, level, reinserted);
                }
                break;
            }
            let sibling = self.split(node);
            let sibling_entry = Entry::Child {
                node: sibling,
                rect: self.node_mbr(sibling),
            };
            if node == self.root {
                let old_root = Entry::Child {
                    node: self.root,
                    rect: self.node_mbr(self.root),
                };
                let new_root = self.alloc(Node {
                    level: level + 1,
                    entries: vec![old_root, sibling_entry],
                });
                self.root = new_root;
                break;
            }
            let (parent, pos) = path.pop().expect("non-root node has a parent on the path");
            let shrunk = self.node_mbr(node);
            match &mut self.nodes[parent].entries[pos] {
                Entry::Child { rect, .. } => *rect = shrunk,
                Entry::Point { .. } => unreachable!(),
            }
            self.nodes[parent].entries.push(sibling_entry);
            node = parent;
        }
    }

    /// R\* ChooseSubtree: minimal overlap enlargement for parents of
    /// leaves, minimal area enlargement above (ties: smaller area).
    fn choose_subtree(&self, node: usize, entry_rect: &Rect) -> usize {
        let n = &self.nodes[node];
        debug_assert!(n.level >= 1);
        let entries = &n.entries;
        if n.level == 1 {
            // children are leaves: minimize overlap enlargement
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for (i, e) in entries.iter().enumerate() {
                let r = match e {
                    Entry::Child { rect, .. } => rect,
                    Entry::Point { .. } => unreachable!(),
                };
                let enlarged = r.union(entry_rect);
                let mut overlap_before = 0.0;
                let mut overlap_after = 0.0;
                for (j, other) in entries.iter().enumerate() {
                    if i == j {
                        continue;
                    }
                    let or = match other {
                        Entry::Child { rect, .. } => rect,
                        Entry::Point { .. } => unreachable!(),
                    };
                    overlap_before += r.overlap_area(or);
                    overlap_after += enlarged.overlap_area(or);
                }
                let key = (
                    overlap_after - overlap_before,
                    r.enlargement(entry_rect),
                    r.area(),
                );
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for (i, e) in entries.iter().enumerate() {
                let r = match e {
                    Entry::Child { rect, .. } => rect,
                    Entry::Point { .. } => unreachable!(),
                };
                let key = (r.enlargement(entry_rect), r.area());
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    /// Remove the `reinsert_count` entries whose centers are farthest from
    /// the node's MBR center; returns them sorted closest-first ("close
    /// reinsert" of the R\* paper).
    fn take_farthest(&mut self, node: usize) -> Vec<Entry> {
        let mbr = self.node_mbr(node);
        let n = &mut self.nodes[node];
        let mut dist: Vec<(f64, usize)> = n
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| (e.to_rect().center_dist2(&mbr), i))
            .collect();
        dist.sort_by(|a, b| b.0.total_cmp(&a.0));
        let count = self.reinsert_count.min(n.entries.len().saturating_sub(1));
        let mut evict: Vec<usize> = dist[..count].iter().map(|&(_, i)| i).collect();
        evict.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back
        let mut orphans: Vec<Entry> = evict.into_iter().map(|i| n.entries.remove(i)).collect();
        orphans.reverse(); // farthest were first; reinsert closest-first
        orphans
    }

    /// Recompute exact covering rectangles along a root-to-node path.
    fn recompute_path_rects(&mut self, path: &[(usize, usize)]) {
        for &(node, pos) in path.iter().rev() {
            let child = match &self.nodes[node].entries[pos] {
                Entry::Child { node: c, .. } => *c,
                Entry::Point { .. } => unreachable!(),
            };
            let exact = self.node_mbr(child);
            match &mut self.nodes[node].entries[pos] {
                Entry::Child { rect, .. } => *rect = exact,
                Entry::Point { .. } => unreachable!(),
            }
        }
    }

    /// R\* topological split. Keeps one group in `node`, allocates a new
    /// node for the other group, and returns its index.
    fn split(&mut self, node: usize) -> usize {
        let level = self.nodes[node].level;
        let mut entries = std::mem::take(&mut self.nodes[node].entries);
        let total = entries.len();
        let m = self.min_entries;
        debug_assert!(total > self.max_entries);

        // ChooseSplitAxis: minimize total margin over all distributions of
        // both sortings (by lower then by upper boundary).
        let mut best_axis = 0;
        let mut best_axis_margin = f64::INFINITY;
        for axis in 0..self.dim {
            let mut margin = 0.0;
            for by_upper in [false, true] {
                let mut order: Vec<usize> = (0..total).collect();
                sort_order(&mut order, &entries, axis, by_upper);
                let (pre, suf) = prefix_suffix_rects(&order, &entries);
                for k in m..=(total - m) {
                    margin += pre[k - 1].margin() + suf[k].margin();
                }
            }
            if margin < best_axis_margin {
                best_axis_margin = margin;
                best_axis = axis;
            }
        }

        // ChooseSplitIndex on the winning axis: minimize overlap, then area.
        let mut best: Option<(Vec<usize>, usize)> = None;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for by_upper in [false, true] {
            let mut order: Vec<usize> = (0..total).collect();
            sort_order(&mut order, &entries, best_axis, by_upper);
            let (pre, suf) = prefix_suffix_rects(&order, &entries);
            for k in m..=(total - m) {
                let r1 = &pre[k - 1];
                let r2 = &suf[k];
                let key = (r1.overlap_area(r2), r1.area() + r2.area());
                if key < best_key {
                    best_key = key;
                    best = Some((order.clone(), k));
                }
            }
        }
        let (order, split_at) = best.expect("at least one valid distribution");

        // Materialize the two groups.
        let in_second: Vec<bool> = {
            let mut v = vec![false; total];
            for &i in &order[split_at..] {
                v[i] = true;
            }
            v
        };
        let mut first = Vec::with_capacity(split_at);
        let mut second = Vec::with_capacity(total - split_at);
        for (i, e) in entries.drain(..).enumerate() {
            if in_second[i] {
                second.push(e);
            } else {
                first.push(e);
            }
        }
        self.nodes[node].entries = first;
        self.alloc(Node {
            level,
            entries: second,
        })
    }

    /// Remove the point `(id, coords)`. Returns `true` if it was present.
    /// If several identical `(id, coords)` entries exist, one is removed.
    pub fn remove(&mut self, id: u32, coords: &[f64]) -> bool {
        self.validate_coords(coords);
        let Some(path) = self.find_leaf(id, coords) else {
            return false;
        };
        // `path` is the root-to-leaf chain of (node, entry position); the
        // last element addresses the point entry inside the leaf.
        let (leaf, entry_pos) = *path.last().expect("non-empty path");
        self.nodes[leaf].entries.remove(entry_pos);
        self.len -= 1;

        // Condense: dissolve underfull nodes bottom-up, queueing orphans.
        let mut orphans: Vec<(u32, Entry)> = Vec::new();
        for i in (0..path.len() - 1).rev() {
            let (parent, pos) = path[i];
            let child = match &self.nodes[parent].entries[pos] {
                Entry::Child { node, .. } => *node,
                Entry::Point { .. } => unreachable!(),
            };
            if self.nodes[child].entries.len() < self.min_entries {
                self.nodes[parent].entries.remove(pos);
                let level = self.nodes[child].level;
                let stranded = std::mem::take(&mut self.nodes[child].entries);
                orphans.extend(stranded.into_iter().map(|e| (level, e)));
                self.dealloc(child);
            } else {
                let exact = self.node_mbr(child);
                match &mut self.nodes[parent].entries[pos] {
                    Entry::Child { rect, .. } => *rect = exact,
                    Entry::Point { .. } => unreachable!(),
                }
            }
        }

        // Reinsert orphans, highest level first.
        orphans.sort_by_key(|o| std::cmp::Reverse(o.0));
        for (level, e) in orphans {
            let mut reinserted = vec![false; self.nodes[self.root].level as usize + 2];
            self.insert_at_level(e, level, &mut reinserted);
        }

        // Shrink the root while it is an inner node with a single child.
        while self.nodes[self.root].level > 0 && self.nodes[self.root].entries.len() == 1 {
            let child = match &self.nodes[self.root].entries[0] {
                Entry::Child { node, .. } => *node,
                Entry::Point { .. } => unreachable!(),
            };
            self.dealloc(self.root);
            self.root = child;
        }
        true
    }

    /// Root-to-leaf path to the entry matching `(id, coords)` exactly.
    /// The final pair addresses the point entry within its leaf.
    fn find_leaf(&self, id: u32, coords: &[f64]) -> Option<Vec<(usize, usize)>> {
        let mut path = Vec::new();
        if self.find_leaf_rec(self.root, id, coords, &mut path) {
            Some(path)
        } else {
            None
        }
    }

    fn find_leaf_rec(
        &self,
        node: usize,
        id: u32,
        coords: &[f64],
        path: &mut Vec<(usize, usize)>,
    ) -> bool {
        let n = &self.nodes[node];
        if n.level == 0 {
            for (pos, e) in n.entries.iter().enumerate() {
                if let Entry::Point {
                    id: pid,
                    coords: pc,
                } = e
                {
                    if *pid == id && pc.iter().zip(coords).all(|(a, b)| a == b) {
                        path.push((node, pos));
                        return true;
                    }
                }
            }
            return false;
        }
        for (pos, e) in n.entries.iter().enumerate() {
            if let Entry::Child { node: c, rect } = e {
                if rect.contains_point(coords) {
                    path.push((node, pos));
                    if self.find_leaf_rec(*c, id, coords, path) {
                        return true;
                    }
                    path.pop();
                }
            }
        }
        false
    }

    /// Approximate heap footprint of the tree structure in bytes
    /// (nodes, entries, coordinate storage). Used for the paper's
    /// index-size comparisons.
    pub fn approx_memory(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for n in &self.nodes {
            total += std::mem::size_of::<Node>();
            total += n.entries.capacity() * std::mem::size_of::<Entry>();
            for e in &n.entries {
                total += match e {
                    Entry::Point { coords, .. } => coords.len() * 8,
                    Entry::Child { rect, .. } => rect.dim() * 16,
                };
            }
        }
        total
    }

    /// Verify structural invariants; panics with a description on violation.
    /// Exposed for tests and debugging.
    pub fn check_invariants(&self) {
        let mut seen = 0usize;
        self.check_node(self.root, None, &mut seen);
        assert_eq!(seen, self.len, "len() does not match stored points");
        let root = &self.nodes[self.root];
        if root.level > 0 {
            assert!(
                root.entries.len() >= 2,
                "inner root must have at least two children"
            );
        }
    }

    fn check_node(&self, idx: usize, expected_rect: Option<&Rect>, seen: &mut usize) {
        let node = &self.nodes[idx];
        assert!(node.level != u32::MAX, "reference to freed node {idx}");
        assert!(
            node.entries.len() <= self.max_entries,
            "node {idx} overflows: {} entries",
            node.entries.len()
        );
        if idx != self.root {
            assert!(!node.entries.is_empty(), "non-root node {idx} is empty");
        }
        if let Some(expect) = expected_rect {
            let exact = self.node_mbr(idx);
            assert_eq!(
                expect, &exact,
                "stored MBR of node {idx} is not exact (level {})",
                node.level
            );
        }
        for e in &node.entries {
            match e {
                Entry::Point { coords, .. } => {
                    assert_eq!(node.level, 0, "point entry in inner node {idx}");
                    assert_eq!(coords.len(), self.dim);
                    *seen += 1;
                }
                Entry::Child { node: c, rect } => {
                    assert!(node.level > 0, "child entry in leaf {idx}");
                    assert_eq!(
                        self.nodes[*c].level + 1,
                        node.level,
                        "level mismatch between {idx} and child {c}"
                    );
                    self.check_node(*c, Some(rect), seen);
                }
            }
        }
    }
}

fn sort_order(order: &mut [usize], entries: &[Entry], axis: usize, by_upper: bool) {
    if by_upper {
        order.sort_unstable_by(|&a, &b| entries[a].hi(axis).total_cmp(&entries[b].hi(axis)));
    } else {
        order.sort_unstable_by(|&a, &b| entries[a].lo(axis).total_cmp(&entries[b].lo(axis)));
    }
}

/// `pre[i]` covers `order[..=i]`; `suf[i]` covers `order[i..]`.
fn prefix_suffix_rects(order: &[usize], entries: &[Entry]) -> (Vec<Rect>, Vec<Rect>) {
    let n = order.len();
    let mut pre = Vec::with_capacity(n);
    let mut acc = entries[order[0]].to_rect();
    pre.push(acc.clone());
    for &i in &order[1..] {
        acc.enlarge(&entries[i].to_rect());
        pre.push(acc.clone());
    }
    let mut suf = vec![entries[order[n - 1]].to_rect(); n];
    for j in (0..n - 1).rev() {
        let mut r = entries[order[j]].to_rect();
        r.enlarge(&suf[j + 1]);
        suf[j] = r;
    }
    (pre, suf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_points(side: usize) -> Vec<(u32, [f64; 2])> {
        let mut pts = Vec::new();
        for x in 0..side {
            for y in 0..side {
                pts.push(((x * side + y) as u32, [x as f64, y as f64]));
            }
        }
        pts
    }

    #[test]
    fn empty_tree_properties() {
        let t = RStarTree::new(3);
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.mbr().is_none());
        t.check_invariants();
    }

    #[test]
    fn insert_points_and_check_invariants() {
        let mut t = RStarTree::new(2);
        for (id, p) in grid_points(20) {
            t.insert(id, &p);
        }
        assert_eq!(t.len(), 400);
        assert!(t.height() >= 2);
        t.check_invariants();
        let mbr = t.mbr().unwrap();
        assert_eq!(mbr.lo(), &[0.0, 0.0]);
        assert_eq!(mbr.hi(), &[19.0, 19.0]);
    }

    #[test]
    fn insert_duplicates_allowed() {
        let mut t = RStarTree::new(1);
        for i in 0..100 {
            t.insert(i, &[1.0]);
        }
        assert_eq!(t.len(), 100);
        t.check_invariants();
    }

    #[test]
    fn remove_existing_and_missing() {
        let mut t = RStarTree::new(2);
        for (id, p) in grid_points(12) {
            t.insert(id, &p);
        }
        t.check_invariants();
        assert!(t.remove(0, &[0.0, 0.0]));
        assert!(!t.remove(0, &[0.0, 0.0]));
        assert!(!t.remove(999, &[5.0, 5.0])); // wrong id
        assert_eq!(t.len(), 143);
        t.check_invariants();
    }

    #[test]
    fn remove_everything_in_random_order() {
        let mut t = RStarTree::new(2);
        let pts = grid_points(10);
        for (id, p) in &pts {
            t.insert(*id, p);
        }
        // deterministic shuffle
        let mut order: Vec<usize> = (0..pts.len()).collect();
        let mut state = 0x9e3779b9u64;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for &i in &order {
            let (id, p) = pts[i];
            assert!(t.remove(id, &p), "missing point {id}");
            t.check_invariants();
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dim_insert_panics() {
        RStarTree::new(2).insert(0, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_insert_panics() {
        RStarTree::new(1).insert(0, &[f64::NAN]);
    }
}
