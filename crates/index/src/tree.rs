//! The R*-tree proper: flat arena storage, R\* insertion (ChooseSubtree,
//! forced reinsertion, margin-driven split) and deletion with tree
//! condensing. Beckmann, Kriegel, Schneider, Seeger: "The R*-tree: an
//! efficient and robust access method for points and rectangles"
//! (SIGMOD 1990).
//!
//! # Flat layout
//!
//! The tree owns **no coordinates**. A node is two parallel flat arrays:
//! `children` (point ids in leaves, arena node indexes in inner nodes)
//! and `bounds` (inner nodes only: one inline `2 * dim` run of
//! `lo_0..lo_{d-1}, hi_0..hi_{d-1}` per child). Leaf coordinates are
//! resolved on demand through a [`CoordSource`], so a leaf scan walks a
//! dense id array plus one contiguous coordinate buffer — no per-entry
//! boxes, no rectangle cloning anywhere on the descent.

use crate::coords::CoordSource;
use crate::rect::{geom, Rect};

/// Default maximum entries per node.
pub(crate) const DEFAULT_MAX_ENTRIES: usize = 32;

/// One node of the arena: `children[j]` is a point id (leaves) or an
/// arena index (inner nodes); inner nodes keep child `j`'s bounding box
/// inline at `bounds[j*2*dim .. (j+1)*2*dim]` (lo corner then hi corner).
#[derive(Debug)]
pub(crate) struct Node {
    /// 0 for leaves; parents of leaves are level 1, etc.
    pub(crate) level: u32,
    pub(crate) children: Vec<u32>,
    pub(crate) bounds: Vec<f32>,
}

impl Node {
    #[inline]
    pub(crate) fn is_leaf(&self) -> bool {
        self.level == 0
    }

    /// Remove entry `j` preserving order; returns the child payload.
    fn remove_entry(&mut self, dim: usize, j: usize) -> u32 {
        let c = self.children.remove(j);
        if !self.is_leaf() {
            self.bounds.drain(j * 2 * dim..(j + 1) * 2 * dim);
        }
        c
    }

    /// Append an inner-node entry with its bounding box.
    fn push_inner(&mut self, child: u32, lo: &[f32], hi: &[f32]) {
        debug_assert!(!self.is_leaf());
        self.children.push(child);
        self.bounds.extend_from_slice(lo);
        self.bounds.extend_from_slice(hi);
    }
}

/// Bounding box of child `j` of an inner node, as `(lo, hi)` slices into
/// the node's flat bounds arena.
#[inline]
pub(crate) fn child_bounds(node: &Node, dim: usize, j: usize) -> (&[f32], &[f32]) {
    node.bounds[j * 2 * dim..(j + 1) * 2 * dim].split_at(dim)
}

/// Bounding box of entry `j` of any node: inner children come from the
/// bounds arena, leaf points degenerate to their coordinates (same slice
/// as both corners).
#[inline]
pub(crate) fn entry_bounds<'a, S: CoordSource>(
    node: &'a Node,
    dim: usize,
    src: &'a S,
    j: usize,
) -> (&'a [f32], &'a [f32]) {
    if node.is_leaf() {
        let c = src.coords(node.children[j]);
        (c, c)
    } else {
        child_bounds(node, dim, j)
    }
}

/// Structure counters and footprint of one tree, for memory accounting
/// and layout regression tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Live arena nodes.
    pub nodes: usize,
    /// Point entries across all leaves.
    pub leaf_entries: usize,
    /// Child entries across all inner nodes.
    pub inner_entries: usize,
    /// Heap footprint of the tree structure in bytes (arena, children,
    /// inline bounds). Point coordinates are *not* included — they live
    /// in the [`CoordSource`], owned and accounted once by the caller.
    pub structure_bytes: usize,
}

/// An in-memory R*-tree over points with runtime dimensionality.
///
/// Point payloads are `u32` identifiers resolved through a
/// [`CoordSource`] (typically row indexes into the owning projection
/// store). Every operation that touches coordinates takes the source as
/// an argument; the caller must pass a source honoring the
/// [`CoordSource`] contract (stable coordinates per live id) with
/// `src.dim() == tree.dim()`. Ids must be unique within one tree —
/// `remove` matches on id alone.
#[derive(Debug)]
pub struct RStarTree {
    dim: usize,
    max_entries: usize,
    min_entries: usize,
    /// Number of entries evicted by forced reinsertion (R\* uses 30% of M).
    reinsert_count: usize,
    pub(crate) nodes: Vec<Node>,
    free: Vec<usize>,
    pub(crate) root: usize,
    pub(crate) len: usize,
}

impl RStarTree {
    /// Empty tree with the default node capacity.
    ///
    /// Contract: `dim >= 1` (debug-checked).
    pub fn new(dim: usize) -> Self {
        Self::with_node_capacity(dim, DEFAULT_MAX_ENTRIES)
    }

    /// Empty tree with a custom maximum node fan-out. Fan-outs below the
    /// R\* minimum of 4 are clamped to 4.
    pub fn with_node_capacity(dim: usize, max_entries: usize) -> Self {
        debug_assert!(dim >= 1, "dimension must be at least 1");
        let max_entries = max_entries.max(4);
        let min_entries = (max_entries as f64 * 0.4).ceil() as usize;
        let reinsert_count = (max_entries as f64 * 0.3).ceil() as usize;
        RStarTree {
            dim,
            max_entries,
            min_entries,
            reinsert_count,
            nodes: vec![Node {
                level: 0,
                children: Vec::new(),
                bounds: Vec::new(),
            }],
            free: Vec::new(),
            root: 0,
            len: 0,
        }
    }

    /// Number of points in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Coordinate dimensionality.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Height of the tree: 1 for a single leaf node.
    pub fn height(&self) -> usize {
        self.nodes[self.root].level as usize + 1
    }

    /// Exact minimum bounding rectangle of the whole tree, `None` if empty.
    pub fn mbr<S: CoordSource>(&self, src: &S) -> Option<Rect> {
        if self.is_empty() {
            None
        } else {
            let (mut lo, mut hi) = (Vec::new(), Vec::new());
            self.node_mbr_into(src, self.root, &mut lo, &mut hi);
            let lo64: Vec<f64> = lo.iter().map(|&v| v as f64).collect();
            let hi64: Vec<f64> = hi.iter().map(|&v| v as f64).collect();
            Some(Rect::new(&lo64, &hi64))
        }
    }

    pub(crate) fn alloc(&mut self, node: Node) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    pub(crate) fn dealloc(&mut self, idx: usize) {
        self.nodes[idx] = Node {
            level: u32::MAX,
            children: Vec::new(),
            bounds: Vec::new(),
        };
        self.free.push(idx);
    }

    /// Exact MBR of node `idx`, written into `lo`/`hi` (resized to `dim`).
    pub(crate) fn node_mbr_into<S: CoordSource>(
        &self,
        src: &S,
        idx: usize,
        lo: &mut Vec<f32>,
        hi: &mut Vec<f32>,
    ) {
        let node = &self.nodes[idx];
        debug_assert!(!node.children.is_empty(), "node_mbr on empty node");
        let (flo, fhi) = entry_bounds(node, self.dim, src, 0);
        lo.clear();
        lo.extend_from_slice(flo);
        hi.clear();
        hi.extend_from_slice(fhi);
        for j in 1..node.children.len() {
            let (elo, ehi) = entry_bounds(node, self.dim, src, j);
            geom::enlarge(lo, hi, elo, ehi);
        }
    }

    /// Insert the point `id` at the coordinates `src` resolves for it.
    ///
    /// Contract (debug-checked): `src.dim() == self.dim()`, the
    /// coordinates are finite, and `id` is not already present.
    pub fn insert<S: CoordSource>(&mut self, src: &S, id: u32) {
        debug_assert_eq!(
            src.dim(),
            self.dim,
            "coordinate source dimensionality mismatch"
        );
        debug_assert!(
            src.coords(id).iter().all(|v| v.is_finite()),
            "non-finite coordinate for id {id}"
        );
        let mut reinserted = vec![false; self.nodes[self.root].level as usize + 2];
        self.insert_entry(src, id, 0, &mut reinserted);
        self.len += 1;
    }

    /// Insert entry `child` into some node at `target_level` (`child` is
    /// a point id when `target_level == 0`, else an arena node index),
    /// applying the R\* overflow treatment (one forced reinsertion per
    /// level per public operation, then splits).
    fn insert_entry<S: CoordSource>(
        &mut self,
        src: &S,
        child: u32,
        target_level: u32,
        reinserted: &mut Vec<bool>,
    ) {
        let dim = self.dim;
        // Bounding box of the entry being inserted.
        let (elo, ehi): (Vec<f32>, Vec<f32>) = if target_level == 0 {
            let c = src.coords(child).to_vec();
            (c.clone(), c)
        } else {
            let (mut lo, mut hi) = (Vec::new(), Vec::new());
            self.node_mbr_into(src, child as usize, &mut lo, &mut hi);
            (lo, hi)
        };

        // Descend, recording the path and enlarging covering boxes.
        let mut path: Vec<(usize, usize)> = Vec::new();
        let mut cur = self.root;
        while self.nodes[cur].level > target_level {
            let pos = self.choose_subtree(cur, &elo, &ehi);
            let next = {
                let node = &mut self.nodes[cur];
                let (blo, bhi) = node.bounds[pos * 2 * dim..(pos + 1) * 2 * dim].split_at_mut(dim);
                geom::enlarge(blo, bhi, &elo, &ehi);
                node.children[pos] as usize
            };
            path.push((cur, pos));
            cur = next;
        }
        debug_assert_eq!(self.nodes[cur].level, target_level);
        {
            let node = &mut self.nodes[cur];
            node.children.push(child);
            if target_level > 0 {
                node.bounds.extend_from_slice(&elo);
                node.bounds.extend_from_slice(&ehi);
            }
        }

        // Overflow treatment, bottom-up.
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        let mut node = cur;
        loop {
            if self.nodes[node].children.len() <= self.max_entries {
                break;
            }
            let level = self.nodes[node].level;
            if node != self.root && !reinserted[level as usize] {
                reinserted[level as usize] = true;
                let orphans = self.take_farthest(src, node);
                self.recompute_path_rects(src, &path);
                for c in orphans {
                    self.insert_entry(src, c, level, reinserted);
                }
                break;
            }
            let sibling = self.split(src, node);
            if node == self.root {
                let mut new_root = Node {
                    level: level + 1,
                    children: Vec::new(),
                    bounds: Vec::new(),
                };
                self.node_mbr_into(src, self.root, &mut lo, &mut hi);
                new_root.push_inner(self.root as u32, &lo, &hi);
                self.node_mbr_into(src, sibling, &mut lo, &mut hi);
                new_root.push_inner(sibling as u32, &lo, &hi);
                self.root = self.alloc(new_root);
                break;
            }
            // A non-root node always has a parent on the path; the
            // `else` arm is unreachable, spelled as a loop exit so the
            // insert path stays free of panic tokens.
            let Some((parent, pos)) = path.pop() else {
                break;
            };
            self.node_mbr_into(src, node, &mut lo, &mut hi);
            {
                let b = &mut self.nodes[parent].bounds[pos * 2 * dim..(pos + 1) * 2 * dim];
                b[..dim].copy_from_slice(&lo);
                b[dim..].copy_from_slice(&hi);
            }
            self.node_mbr_into(src, sibling, &mut lo, &mut hi);
            self.nodes[parent].push_inner(sibling as u32, &lo, &hi);
            node = parent;
        }
    }

    /// R\* ChooseSubtree: minimal overlap enlargement for parents of
    /// leaves, minimal area enlargement above (ties: smaller area).
    /// Only called on inner nodes, so every entry has arena bounds.
    fn choose_subtree(&self, node: usize, elo: &[f32], ehi: &[f32]) -> usize {
        let dim = self.dim;
        let n = &self.nodes[node];
        debug_assert!(n.level >= 1);
        let count = n.children.len();
        if n.level == 1 {
            // children are leaves: minimize overlap enlargement
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
            for i in 0..count {
                let (ilo, ihi) = child_bounds(n, dim, i);
                let mut overlap_before = 0.0;
                let mut overlap_after = 0.0;
                for j in 0..count {
                    if i == j {
                        continue;
                    }
                    let (jlo, jhi) = child_bounds(n, dim, j);
                    overlap_before += geom::overlap_area(ilo, ihi, jlo, jhi);
                    overlap_after += geom::overlap_area_of_union(ilo, ihi, elo, ehi, jlo, jhi);
                }
                let key = (
                    overlap_after - overlap_before,
                    geom::enlargement(ilo, ihi, elo, ehi),
                    geom::area(ilo, ihi),
                );
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        } else {
            let mut best = 0;
            let mut best_key = (f64::INFINITY, f64::INFINITY);
            for i in 0..count {
                let (ilo, ihi) = child_bounds(n, dim, i);
                let key = (geom::enlargement(ilo, ihi, elo, ehi), geom::area(ilo, ihi));
                if key < best_key {
                    best_key = key;
                    best = i;
                }
            }
            best
        }
    }

    /// Remove the `reinsert_count` entries whose centers are farthest from
    /// the node's MBR center; returns their child payloads ("close
    /// reinsert" of the R\* paper).
    fn take_farthest<S: CoordSource>(&mut self, src: &S, node: usize) -> Vec<u32> {
        let dim = self.dim;
        let (mut mlo, mut mhi) = (Vec::new(), Vec::new());
        self.node_mbr_into(src, node, &mut mlo, &mut mhi);
        let count;
        let mut evict: Vec<usize>;
        {
            let n = &self.nodes[node];
            let mut dist: Vec<(f64, usize)> = (0..n.children.len())
                .map(|j| {
                    let (lo, hi) = entry_bounds(n, dim, src, j);
                    (geom::center_dist2(lo, hi, &mlo, &mhi), j)
                })
                .collect();
            dist.sort_by(|a, b| b.0.total_cmp(&a.0));
            count = self.reinsert_count.min(n.children.len().saturating_sub(1));
            evict = dist[..count].iter().map(|&(_, j)| j).collect();
        }
        evict.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back
        let node = &mut self.nodes[node];
        let mut orphans: Vec<u32> = evict
            .into_iter()
            .map(|j| node.remove_entry(dim, j))
            .collect();
        orphans.reverse(); // farthest were first; reinsert closest-first
        orphans
    }

    /// Recompute exact covering boxes along a root-to-node path.
    fn recompute_path_rects<S: CoordSource>(&mut self, src: &S, path: &[(usize, usize)]) {
        let dim = self.dim;
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        for &(node, pos) in path.iter().rev() {
            let child = self.nodes[node].children[pos] as usize;
            self.node_mbr_into(src, child, &mut lo, &mut hi);
            let b = &mut self.nodes[node].bounds[pos * 2 * dim..(pos + 1) * 2 * dim];
            b[..dim].copy_from_slice(&lo);
            b[dim..].copy_from_slice(&hi);
        }
    }

    /// R\* topological split. Keeps one group in `node`, allocates a new
    /// node for the other group, and returns its index.
    fn split<S: CoordSource>(&mut self, src: &S, node: usize) -> usize {
        let dim = self.dim;
        let w = 2 * dim;
        let level = self.nodes[node].level;
        let total = self.nodes[node].children.len();
        let m = self.min_entries;
        debug_assert!(total > self.max_entries);

        // Gather every entry's bounding box contiguously once.
        let mut ebounds = vec![0.0f32; total * w];
        {
            let n = &self.nodes[node];
            for j in 0..total {
                let (lo, hi) = entry_bounds(n, dim, src, j);
                ebounds[j * w..j * w + dim].copy_from_slice(lo);
                ebounds[j * w + dim..(j + 1) * w].copy_from_slice(hi);
            }
        }

        // ChooseSplitAxis: minimize total margin over all distributions of
        // both sortings (by lower then by upper boundary).
        let mut best_axis = 0;
        let mut best_axis_margin = f64::INFINITY;
        for axis in 0..dim {
            let mut margin = 0.0;
            for by_upper in [false, true] {
                let mut order: Vec<usize> = (0..total).collect();
                sort_order(&mut order, &ebounds, dim, axis, by_upper);
                let (pre, suf) = prefix_suffix_bounds(&order, &ebounds, dim);
                for k in m..=(total - m) {
                    let p = &pre[(k - 1) * w..k * w];
                    let s = &suf[k * w..(k + 1) * w];
                    margin +=
                        geom::margin(&p[..dim], &p[dim..]) + geom::margin(&s[..dim], &s[dim..]);
                }
            }
            if margin < best_axis_margin {
                best_axis_margin = margin;
                best_axis = axis;
            }
        }

        // ChooseSplitIndex on the winning axis: minimize overlap, then area.
        let mut best: Option<(Vec<usize>, usize)> = None;
        let mut best_key = (f64::INFINITY, f64::INFINITY);
        for by_upper in [false, true] {
            let mut order: Vec<usize> = (0..total).collect();
            sort_order(&mut order, &ebounds, dim, best_axis, by_upper);
            let (pre, suf) = prefix_suffix_bounds(&order, &ebounds, dim);
            for k in m..=(total - m) {
                let p = &pre[(k - 1) * w..k * w];
                let s = &suf[k * w..(k + 1) * w];
                let key = (
                    geom::overlap_area(&p[..dim], &p[dim..], &s[..dim], &s[dim..]),
                    geom::area(&p[..dim], &p[dim..]) + geom::area(&s[..dim], &s[dim..]),
                );
                if key < best_key {
                    best_key = key;
                    best = Some((order.clone(), k));
                }
            }
        }
        // lint: allow(panic-free-surface) — the R*-split distribution sweep always admits at least one candidate
        let (order, split_at) = best.expect("at least one valid distribution");

        // Materialize the two groups, preserving original entry order.
        let in_second: Vec<bool> = {
            let mut v = vec![false; total];
            for &j in &order[split_at..] {
                v[j] = true;
            }
            v
        };
        let n = &mut self.nodes[node];
        let old_children = std::mem::take(&mut n.children);
        let old_bounds = std::mem::take(&mut n.bounds);
        let mut first_children = Vec::with_capacity(split_at);
        let mut second_children = Vec::with_capacity(total - split_at);
        let mut first_bounds = Vec::new();
        let mut second_bounds = Vec::new();
        if level > 0 {
            first_bounds.reserve(split_at * w);
            second_bounds.reserve((total - split_at) * w);
        }
        for (j, c) in old_children.into_iter().enumerate() {
            if in_second[j] {
                second_children.push(c);
                if level > 0 {
                    second_bounds.extend_from_slice(&old_bounds[j * w..(j + 1) * w]);
                }
            } else {
                first_children.push(c);
                if level > 0 {
                    first_bounds.extend_from_slice(&old_bounds[j * w..(j + 1) * w]);
                }
            }
        }
        let n = &mut self.nodes[node];
        n.children = first_children;
        n.bounds = first_bounds;
        self.alloc(Node {
            level,
            children: second_children,
            bounds: second_bounds,
        })
    }

    /// Remove the point `id`. Returns `true` if it was present.
    ///
    /// The descent is guided by `src.coords(id)`, so the source must
    /// still resolve the id (contract: coordinates are stable for the
    /// lifetime of the entry).
    pub fn remove<S: CoordSource>(&mut self, src: &S, id: u32) -> bool {
        let dim = self.dim;
        debug_assert_eq!(src.dim(), dim, "coordinate source dimensionality mismatch");
        let Some(path) = self.find_leaf(src, id) else {
            return false;
        };
        // `path` is the root-to-leaf chain of (node, entry position); the
        // last element addresses the point entry inside the leaf.
        let Some(&(leaf, entry_pos)) = path.last() else {
            return false; // find_leaf never returns an empty path
        };
        self.nodes[leaf].remove_entry(dim, entry_pos);
        self.len -= 1;

        // Condense: dissolve underfull nodes bottom-up, queueing orphans.
        let (mut lo, mut hi) = (Vec::new(), Vec::new());
        let mut orphans: Vec<(u32, u32)> = Vec::new();
        for i in (0..path.len() - 1).rev() {
            let (parent, pos) = path[i];
            let child = self.nodes[parent].children[pos] as usize;
            if self.nodes[child].children.len() < self.min_entries {
                self.nodes[parent].remove_entry(dim, pos);
                let level = self.nodes[child].level;
                let stranded = std::mem::take(&mut self.nodes[child].children);
                orphans.extend(stranded.into_iter().map(|c| (level, c)));
                self.dealloc(child);
            } else {
                self.node_mbr_into(src, child, &mut lo, &mut hi);
                let b = &mut self.nodes[parent].bounds[pos * 2 * dim..(pos + 1) * 2 * dim];
                b[..dim].copy_from_slice(&lo);
                b[dim..].copy_from_slice(&hi);
            }
        }

        // Reinsert orphans, highest level first.
        orphans.sort_by_key(|o| std::cmp::Reverse(o.0));
        for (level, c) in orphans {
            let mut reinserted = vec![false; self.nodes[self.root].level as usize + 2];
            self.insert_entry(src, c, level, &mut reinserted);
        }

        // Shrink the root while it is an inner node with a single child.
        while self.nodes[self.root].level > 0 && self.nodes[self.root].children.len() == 1 {
            let child = self.nodes[self.root].children[0] as usize;
            self.dealloc(self.root);
            self.root = child;
        }
        true
    }

    /// Root-to-leaf path to the entry with the given id, guided by its
    /// coordinates. The final pair addresses the point entry in its leaf.
    fn find_leaf<S: CoordSource>(&self, src: &S, id: u32) -> Option<Vec<(usize, usize)>> {
        let mut path = Vec::new();
        if self.find_leaf_rec(self.root, id, src.coords(id), &mut path) {
            Some(path)
        } else {
            None
        }
    }

    fn find_leaf_rec(
        &self,
        node: usize,
        id: u32,
        coords: &[f32],
        path: &mut Vec<(usize, usize)>,
    ) -> bool {
        let n = &self.nodes[node];
        if n.is_leaf() {
            if let Some(pos) = n.children.iter().position(|&c| c == id) {
                path.push((node, pos));
                return true;
            }
            return false;
        }
        for pos in 0..n.children.len() {
            let (lo, hi) = child_bounds(n, self.dim, pos);
            if geom::contains_point(lo, hi, coords) {
                path.push((node, pos));
                if self.find_leaf_rec(n.children[pos] as usize, id, coords, path) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }

    /// Structure counters and heap footprint. See [`TreeStats`].
    pub fn stats(&self) -> TreeStats {
        let mut s = TreeStats {
            nodes: 0,
            leaf_entries: 0,
            inner_entries: 0,
            structure_bytes: std::mem::size_of::<Self>()
                + self.nodes.capacity() * std::mem::size_of::<Node>()
                + self.free.capacity() * std::mem::size_of::<usize>(),
        };
        for n in &self.nodes {
            s.structure_bytes += n.children.capacity() * std::mem::size_of::<u32>()
                + n.bounds.capacity() * std::mem::size_of::<f32>();
            if n.level == u32::MAX {
                continue; // freed arena slot
            }
            s.nodes += 1;
            if n.is_leaf() {
                s.leaf_entries += n.children.len();
            } else {
                s.inner_entries += n.children.len();
            }
        }
        s
    }

    /// Approximate heap footprint of the tree structure in bytes. Leaf
    /// coordinates live in the caller's [`CoordSource`] and are *not*
    /// counted here. Used for the paper's index-size comparisons.
    pub fn approx_memory(&self) -> usize {
        self.stats().structure_bytes
    }

    /// Verify structural invariants; panics with a description on
    /// violation. Exposed for tests and debugging.
    pub fn check_invariants<S: CoordSource>(&self, src: &S) {
        let mut seen = 0usize;
        self.check_node(src, self.root, None, &mut seen);
        assert_eq!(seen, self.len, "len() does not match stored points");
        let root = &self.nodes[self.root];
        if root.level > 0 {
            assert!(
                root.children.len() >= 2,
                "inner root must have at least two children"
            );
        }
    }

    fn check_node<S: CoordSource>(
        &self,
        src: &S,
        idx: usize,
        expected_bounds: Option<(&[f32], &[f32])>,
        seen: &mut usize,
    ) {
        let node = &self.nodes[idx];
        assert!(node.level != u32::MAX, "reference to freed node {idx}");
        assert!(
            node.children.len() <= self.max_entries,
            "node {idx} overflows: {} entries",
            node.children.len()
        );
        if idx != self.root {
            assert!(!node.children.is_empty(), "non-root node {idx} is empty");
        }
        if let Some((elo, ehi)) = expected_bounds {
            let (mut lo, mut hi) = (Vec::new(), Vec::new());
            self.node_mbr_into(src, idx, &mut lo, &mut hi);
            assert!(
                elo == &lo[..] && ehi == &hi[..],
                "stored MBR of node {idx} is not exact (level {}): stored ({elo:?}, {ehi:?}), exact ({lo:?}, {hi:?})",
                node.level
            );
        }
        if node.is_leaf() {
            assert!(node.bounds.is_empty(), "leaf {idx} carries arena bounds");
            for &id in &node.children {
                assert_eq!(src.coords(id).len(), self.dim);
                *seen += 1;
            }
        } else {
            assert_eq!(
                node.bounds.len(),
                node.children.len() * 2 * self.dim,
                "inner node {idx} bounds arena out of step with its children"
            );
            for pos in 0..node.children.len() {
                let c = node.children[pos] as usize;
                assert_eq!(
                    self.nodes[c].level + 1,
                    node.level,
                    "level mismatch between {idx} and child {c}"
                );
                let (lo, hi) = child_bounds(node, self.dim, pos);
                self.check_node(src, c, Some((lo, hi)), seen);
            }
        }
    }
}

/// Sort entry indexes by the chosen corner value on `axis`.
fn sort_order(order: &mut [usize], ebounds: &[f32], dim: usize, axis: usize, by_upper: bool) {
    let w = 2 * dim;
    let key = |j: usize| {
        if by_upper {
            ebounds[j * w + dim + axis]
        } else {
            ebounds[j * w + axis]
        }
    };
    order.sort_unstable_by(|&a, &b| key(a).total_cmp(&key(b)));
}

/// Running covering boxes over a split ordering, flat `2*dim` per slot:
/// slot `i` of `pre` covers `order[..=i]`; slot `i` of `suf` covers
/// `order[i..]`.
fn prefix_suffix_bounds(order: &[usize], ebounds: &[f32], dim: usize) -> (Vec<f32>, Vec<f32>) {
    let n = order.len();
    let w = 2 * dim;
    let mut pre = vec![0.0f32; n * w];
    pre[..w].copy_from_slice(&ebounds[order[0] * w..(order[0] + 1) * w]);
    for i in 1..n {
        let (done, rest) = pre.split_at_mut(i * w);
        let cur = &mut rest[..w];
        cur.copy_from_slice(&done[(i - 1) * w..]);
        let e = &ebounds[order[i] * w..(order[i] + 1) * w];
        let (lo, hi) = cur.split_at_mut(dim);
        geom::enlarge(lo, hi, &e[..dim], &e[dim..]);
    }
    let mut suf = vec![0.0f32; n * w];
    suf[(n - 1) * w..].copy_from_slice(&ebounds[order[n - 1] * w..(order[n - 1] + 1) * w]);
    for i in (0..n - 1).rev() {
        let (left, right) = suf.split_at_mut((i + 1) * w);
        let cur = &mut left[i * w..];
        cur.copy_from_slice(&ebounds[order[i] * w..(order[i] + 1) * w]);
        let (lo, hi) = cur.split_at_mut(dim);
        geom::enlarge(lo, hi, &right[..dim], &right[dim..w]);
    }
    (pre, suf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::OwnedCoords;

    fn grid_source(side: usize) -> OwnedCoords {
        let mut src = OwnedCoords::new(2);
        for x in 0..side {
            for y in 0..side {
                src.push(&[x as f32, y as f32]);
            }
        }
        src
    }

    #[test]
    fn empty_tree_properties() {
        let src = OwnedCoords::new(3);
        let t = RStarTree::new(3);
        assert_eq!(t.len(), 0);
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
        assert!(t.mbr(&src).is_none());
        t.check_invariants(&src);
    }

    #[test]
    fn insert_points_and_check_invariants() {
        let src = grid_source(20);
        let mut t = RStarTree::new(2);
        for id in 0..400u32 {
            t.insert(&src, id);
        }
        assert_eq!(t.len(), 400);
        assert!(t.height() >= 2);
        t.check_invariants(&src);
        let mbr = t.mbr(&src).unwrap();
        assert_eq!(mbr.lo(), &[0.0, 0.0]);
        assert_eq!(mbr.hi(), &[19.0, 19.0]);
    }

    #[test]
    fn insert_duplicate_coordinates_allowed() {
        let mut src = OwnedCoords::new(1);
        let mut t = RStarTree::new(1);
        for _ in 0..100 {
            let id = src.push(&[1.0]);
            t.insert(&src, id);
        }
        assert_eq!(t.len(), 100);
        t.check_invariants(&src);
    }

    #[test]
    fn remove_existing_and_missing() {
        let src = grid_source(12);
        let mut t = RStarTree::new(2);
        for id in 0..144u32 {
            t.insert(&src, id);
        }
        t.check_invariants(&src);
        assert!(t.remove(&src, 0));
        assert!(!t.remove(&src, 0));
        assert_eq!(t.len(), 143);
        t.check_invariants(&src);
    }

    #[test]
    fn remove_everything_in_random_order() {
        let src = grid_source(10);
        let mut t = RStarTree::new(2);
        for id in 0..100u32 {
            t.insert(&src, id);
        }
        // deterministic shuffle
        let mut order: Vec<u32> = (0..100).collect();
        let mut state = 0x9e3779b9u64;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for &id in &order {
            assert!(t.remove(&src, id), "missing point {id}");
            t.check_invariants(&src);
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn node_capacity_is_clamped_to_rstar_minimum() {
        let t = RStarTree::with_node_capacity(2, 1);
        assert_eq!(t.max_entries, 4);
    }

    #[test]
    fn stats_track_entries_and_structure() {
        let src = grid_source(15);
        let mut t = RStarTree::new(2);
        for id in 0..225u32 {
            t.insert(&src, id);
        }
        let s = t.stats();
        assert_eq!(s.leaf_entries, 225);
        assert!(s.nodes >= 8, "nodes = {}", s.nodes);
        assert!(s.inner_entries >= s.nodes - 1);
        assert!(s.structure_bytes > 0);
        assert_eq!(s.structure_bytes, t.approx_memory());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_dim_insert_panics_in_debug() {
        let src = OwnedCoords::from_flat(1, vec![1.0]);
        RStarTree::new(2).insert(&src, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_insert_panics_in_debug() {
        let src = OwnedCoords::from_flat(1, vec![f32::NAN]);
        RStarTree::new(1).insert(&src, 0);
    }
}
