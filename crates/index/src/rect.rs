//! Axis-aligned bounding rectangles with runtime dimensionality.

/// An axis-aligned hyper-rectangle `[lo_0, hi_0] x ... x [lo_{d-1}, hi_{d-1}]`.
///
/// Degenerate rectangles (points, `lo == hi`) are valid and are how leaf
/// entries are represented.
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Rectangle from corner slices. Panics on dimension mismatch, empty
    /// dimensions, NaN, or `lo > hi` in any dimension.
    pub fn new(lo: &[f64], hi: &[f64]) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(!lo.is_empty(), "zero-dimensional rectangle");
        for i in 0..lo.len() {
            assert!(
                lo[i] <= hi[i],
                "inverted rectangle in dim {i}: {} > {}",
                lo[i],
                hi[i]
            );
        }
        Rect {
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Degenerate rectangle covering a single point.
    pub fn point(coords: &[f64]) -> Self {
        assert!(!coords.is_empty(), "zero-dimensional point");
        assert!(
            coords.iter().all(|v| !v.is_nan()),
            "NaN coordinate rejected"
        );
        Rect {
            lo: coords.into(),
            hi: coords.into(),
        }
    }

    /// Hypercube of side `w` centered at `center` — the paper's
    /// query-centric bucket `W(G_i(q), w)` (Eq. 8).
    pub fn centered_cube(center: &[f64], w: f64) -> Self {
        assert!(w >= 0.0 && !w.is_nan(), "invalid width {w}");
        let half = w / 2.0;
        let lo: Vec<f64> = center.iter().map(|&c| c - half).collect();
        let hi: Vec<f64> = center.iter().map(|&c| c + half).collect();
        Rect::new(&lo, &hi)
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// True iff the two rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo.iter().zip(other.hi.iter()).all(|(&a, &b)| a <= b)
            && other.lo.iter().zip(self.hi.iter()).all(|(&a, &b)| a <= b)
    }

    /// True iff `p` lies inside the rectangle (boundary inclusive).
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dim(), p.len());
        p.iter()
            .enumerate()
            .all(|(i, &v)| self.lo[i] <= v && v <= self.hi[i])
    }

    /// True iff `other` is fully inside `self` (boundary inclusive).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.lo.iter().zip(other.lo.iter()).all(|(&a, &b)| a <= b)
            && self.hi.iter().zip(other.hi.iter()).all(|(&a, &b)| b <= a)
    }

    /// Hyper-volume (product of side lengths).
    #[inline]
    pub fn area(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| h - l)
            .product()
    }

    /// Margin: sum of side lengths (the R\* split heuristic score).
    #[inline]
    pub fn margin(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| h - l)
            .sum()
    }

    /// Volume of the intersection with `other` (0 when disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let mut v = 1.0;
        for i in 0..self.dim() {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if lo >= hi {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// Grow to the smallest rectangle covering both `self` and `other`.
    pub fn enlarge(&mut self, other: &Rect) {
        for i in 0..self.lo.len() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// Smallest rectangle covering both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        let mut r = self.clone();
        r.enlarge(other);
        r
    }

    /// Extra volume needed to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Center coordinate in dimension `i`.
    #[inline]
    pub fn center(&self, i: usize) -> f64 {
        0.5 * (self.lo[i] + self.hi[i])
    }

    /// Squared Euclidean distance between the centers of two rectangles.
    pub fn center_dist2(&self, other: &Rect) -> f64 {
        (0..self.dim())
            .map(|i| {
                let d = self.center(i) - other.center(i);
                d * d
            })
            .sum()
    }

    /// MINDIST: squared Euclidean distance from point `p` to the nearest
    /// point of the rectangle (0 if `p` is inside). Drives best-first NN.
    pub fn min_dist2(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(self.dim(), p.len());
        let mut acc = 0.0;
        for ((&v, &lo), &hi) in p.iter().zip(&self.lo).zip(&self.hi) {
            let d = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_rect_roundtrip() {
        let r = Rect::point(&[1.0, -2.0, 3.5]);
        assert_eq!(r.lo(), &[1.0, -2.0, 3.5]);
        assert_eq!(r.hi(), &[1.0, -2.0, 3.5]);
        assert_eq!(r.area(), 0.0);
        assert!(r.contains_point(&[1.0, -2.0, 3.5]));
    }

    #[test]
    fn centered_cube_is_the_paper_window() {
        // W(G(q), w) = [g_j - w/2, g_j + w/2] per dimension (Eq. 8).
        let r = Rect::centered_cube(&[0.0, 10.0], 4.0);
        assert_eq!(r.lo(), &[-2.0, 8.0]);
        assert_eq!(r.hi(), &[2.0, 12.0]);
        assert!(r.contains_point(&[-2.0, 12.0])); // boundary inclusive
        assert!(!r.contains_point(&[-2.1, 10.0]));
    }

    #[test]
    fn intersection_and_containment() {
        let a = Rect::new(&[0.0, 0.0], &[2.0, 2.0]);
        let b = Rect::new(&[1.0, 1.0], &[3.0, 3.0]);
        let c = Rect::new(&[2.5, 2.5], &[4.0, 4.0]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
        assert!(a.contains_rect(&Rect::new(&[0.5, 0.5], &[1.5, 1.5])));
        assert!(!a.contains_rect(&b));
        // touching edges count as intersecting
        assert!(a.intersects(&Rect::new(&[2.0, 0.0], &[3.0, 1.0])));
    }

    #[test]
    fn areas_margins_overlap() {
        let a = Rect::new(&[0.0, 0.0], &[2.0, 3.0]);
        let b = Rect::new(&[1.0, 1.0], &[3.0, 5.0]);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(a.overlap_area(&b), 1.0 * 2.0);
        assert_eq!(a.union(&b).area(), 3.0 * 5.0);
        assert_eq!(a.enlargement(&b), 15.0 - 6.0);
        let far = Rect::new(&[10.0, 10.0], &[11.0, 11.0]);
        assert_eq!(a.overlap_area(&far), 0.0);
    }

    #[test]
    fn min_dist2_cases() {
        let r = Rect::new(&[0.0, 0.0], &[2.0, 2.0]);
        assert_eq!(r.min_dist2(&[1.0, 1.0]), 0.0); // inside
        assert_eq!(r.min_dist2(&[3.0, 1.0]), 1.0); // right face
        assert_eq!(r.min_dist2(&[3.0, 3.0]), 2.0); // corner
        assert_eq!(r.min_dist2(&[-2.0, 1.0]), 4.0); // left face
    }

    #[test]
    #[should_panic(expected = "inverted rectangle")]
    fn inverted_rect_panics() {
        Rect::new(&[1.0], &[0.0]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_point_panics() {
        Rect::point(&[f64::NAN]);
    }
}
