//! Axis-aligned bounding rectangles with runtime dimensionality.
//!
//! [`Rect`] is the *boundary value type*, in `f64`: callers describe
//! query windows with it and [`crate::RStarTree::mbr`] reports the
//! tree's extent as one. Inside the tree, bounds are never materialized
//! as `Rect`s — nodes keep their children's boxes inline in flat `f32`
//! arenas and all geometry runs over the slice helpers in [`geom`], so
//! the hot path performs no rectangle cloning and no per-entry
//! allocation.

/// An axis-aligned hyper-rectangle `[lo_0, hi_0] x ... x [lo_{d-1}, hi_{d-1}]`.
///
/// Degenerate rectangles (points, `lo == hi`) are valid.
///
/// # Contract
///
/// Constructors require corners of equal, non-zero dimensionality with
/// `lo[i] <= hi[i]` and no NaN in any dimension. The contract is checked
/// with `debug_assert!` only: violating it in release builds is safe
/// (no undefined behavior) but yields unspecified query results —
/// typically an empty window. Callers holding unvalidated input should
/// validate before constructing (as `dblsh-core` does via `DbLshError`).
#[derive(Debug, Clone, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Rectangle from corner slices. See the type-level contract.
    pub fn new(lo: &[f64], hi: &[f64]) -> Self {
        debug_assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        debug_assert!(!lo.is_empty(), "zero-dimensional rectangle");
        debug_assert!(
            lo.iter().zip(hi).all(|(&l, &h)| l <= h),
            "inverted or NaN rectangle: lo {lo:?}, hi {hi:?}"
        );
        Rect {
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// Degenerate rectangle covering a single point.
    pub fn point(coords: &[f64]) -> Self {
        debug_assert!(!coords.is_empty(), "zero-dimensional point");
        debug_assert!(coords.iter().all(|v| !v.is_nan()), "NaN coordinate");
        Rect {
            lo: coords.into(),
            hi: coords.into(),
        }
    }

    /// Hypercube of side `w >= 0` centered at `center` — the paper's
    /// query-centric bucket `W(G_i(q), w)` (Eq. 8).
    pub fn centered_cube(center: &[f64], w: f64) -> Self {
        debug_assert!(w >= 0.0 && !w.is_nan(), "invalid width {w}");
        let half = w / 2.0;
        let lo: Vec<f64> = center.iter().map(|&c| c - half).collect();
        let hi: Vec<f64> = center.iter().map(|&c| c + half).collect();
        Rect::new(&lo, &hi)
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// True iff the two rectangles share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo.iter().zip(other.hi.iter()).all(|(&a, &b)| a <= b)
            && other.lo.iter().zip(self.hi.iter()).all(|(&a, &b)| a <= b)
    }

    /// True iff `p` lies inside the rectangle (boundary inclusive).
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(self.dim(), p.len());
        p.iter()
            .enumerate()
            .all(|(i, &v)| self.lo[i] <= v && v <= self.hi[i])
    }

    /// True iff `other` is fully inside `self` (boundary inclusive).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.lo.iter().zip(other.lo.iter()).all(|(&a, &b)| a <= b)
            && self.hi.iter().zip(other.hi.iter()).all(|(&a, &b)| b <= a)
    }

    /// Hyper-volume (product of side lengths).
    #[inline]
    pub fn area(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| h - l)
            .product()
    }

    /// Margin: sum of side lengths (the R\* split heuristic score).
    #[inline]
    pub fn margin(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(&l, &h)| h - l)
            .sum()
    }

    /// Volume of the intersection with `other` (0 when disjoint).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        let mut v = 1.0;
        for i in 0..self.dim() {
            let lo = self.lo[i].max(other.lo[i]);
            let hi = self.hi[i].min(other.hi[i]);
            if lo >= hi {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// Grow to the smallest rectangle covering both `self` and `other`.
    pub fn enlarge(&mut self, other: &Rect) {
        for i in 0..self.lo.len() {
            if other.lo[i] < self.lo[i] {
                self.lo[i] = other.lo[i];
            }
            if other.hi[i] > self.hi[i] {
                self.hi[i] = other.hi[i];
            }
        }
    }

    /// Smallest rectangle covering both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        let mut r = self.clone();
        r.enlarge(other);
        r
    }

    /// Extra volume needed to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Center coordinate in dimension `i`.
    #[inline]
    pub fn center(&self, i: usize) -> f64 {
        0.5 * (self.lo[i] + self.hi[i])
    }

    /// Squared Euclidean distance between the centers of two rectangles.
    pub fn center_dist2(&self, other: &Rect) -> f64 {
        (0..self.dim())
            .map(|i| {
                let d = self.center(i) - other.center(i);
                d * d
            })
            .sum()
    }

    /// MINDIST: squared Euclidean distance from point `p` to the nearest
    /// point of the rectangle (0 if `p` is inside). Drives best-first NN.
    pub fn min_dist2(&self, p: &[f64]) -> f64 {
        debug_assert_eq!(self.dim(), p.len());
        let mut acc = 0.0;
        for ((&v, &lo), &hi) in p.iter().zip(&self.lo).zip(&self.hi) {
            let d = if v < lo {
                lo - v
            } else if v > hi {
                v - hi
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }
}

/// Allocation-free rectangle geometry over raw `(lo, hi)` corner slices —
/// the arithmetic layer of the flat node arena. A degenerate box (a
/// point) is expressed by passing the same slice as both corners.
///
/// Stored bounds and coordinates are `f32` (half the memory traffic of
/// the hot path); every derived quantity (areas, margins, distances) is
/// accumulated in `f64` so the R\* heuristics never overflow or lose
/// order on high-dimensional products. The mixed-precision predicates at
/// the bottom compare `f64` query windows against stored `f32` data by
/// casting the stored values up, which is exact.
pub(crate) mod geom {
    /// Hyper-volume (product of side lengths, in `f64`).
    #[inline]
    pub fn area(lo: &[f32], hi: &[f32]) -> f64 {
        lo.iter()
            .zip(hi)
            .map(|(&l, &h)| (h as f64) - (l as f64))
            .product()
    }

    /// Sum of side lengths (in `f64`).
    #[inline]
    pub fn margin(lo: &[f32], hi: &[f32]) -> f64 {
        lo.iter()
            .zip(hi)
            .map(|(&l, &h)| (h as f64) - (l as f64))
            .sum()
    }

    /// Volume of the intersection (0 when disjoint).
    #[inline]
    pub fn overlap_area(alo: &[f32], ahi: &[f32], blo: &[f32], bhi: &[f32]) -> f64 {
        let mut v = 1.0f64;
        for i in 0..alo.len() {
            let lo = alo[i].max(blo[i]);
            let hi = ahi[i].min(bhi[i]);
            if lo >= hi {
                return 0.0;
            }
            v *= (hi as f64) - (lo as f64);
        }
        v
    }

    /// Volume of the smallest box covering both inputs, without
    /// materializing it.
    #[inline]
    pub fn union_area(alo: &[f32], ahi: &[f32], blo: &[f32], bhi: &[f32]) -> f64 {
        let mut v = 1.0f64;
        for i in 0..alo.len() {
            v *= (ahi[i].max(bhi[i]) as f64) - (alo[i].min(blo[i]) as f64);
        }
        v
    }

    /// Extra volume box `a` needs to also cover box `e`.
    #[inline]
    pub fn enlargement(alo: &[f32], ahi: &[f32], elo: &[f32], ehi: &[f32]) -> f64 {
        union_area(alo, ahi, elo, ehi) - area(alo, ahi)
    }

    /// Overlap of `union(a, e)` with `o`, without materializing the union.
    #[inline]
    pub fn overlap_area_of_union(
        alo: &[f32],
        ahi: &[f32],
        elo: &[f32],
        ehi: &[f32],
        olo: &[f32],
        ohi: &[f32],
    ) -> f64 {
        let mut v = 1.0f64;
        for i in 0..alo.len() {
            let ulo = alo[i].min(elo[i]);
            let uhi = ahi[i].max(ehi[i]);
            let lo = ulo.max(olo[i]);
            let hi = uhi.min(ohi[i]);
            if lo >= hi {
                return 0.0;
            }
            v *= (hi as f64) - (lo as f64);
        }
        v
    }

    /// Grow box `(lo, hi)` in place to cover box `(plo, phi)`.
    #[inline]
    pub fn enlarge(lo: &mut [f32], hi: &mut [f32], plo: &[f32], phi: &[f32]) {
        for i in 0..lo.len() {
            if plo[i] < lo[i] {
                lo[i] = plo[i];
            }
            if phi[i] > hi[i] {
                hi[i] = phi[i];
            }
        }
    }

    /// True iff stored point `p` lies inside stored box `(lo, hi)`.
    #[inline]
    pub fn contains_point(lo: &[f32], hi: &[f32], p: &[f32]) -> bool {
        debug_assert_eq!(lo.len(), p.len());
        lo.iter()
            .zip(hi)
            .zip(p)
            .all(|((&l, &h), &v)| l <= v && v <= h)
    }

    /// Squared Euclidean distance between the centers of two boxes.
    #[inline]
    pub fn center_dist2(alo: &[f32], ahi: &[f32], blo: &[f32], bhi: &[f32]) -> f64 {
        (0..alo.len())
            .map(|i| {
                let d = 0.5 * ((alo[i] as f64) + (ahi[i] as f64))
                    - 0.5 * ((blo[i] as f64) + (bhi[i] as f64));
                d * d
            })
            .sum()
    }

    // --- mixed precision: f64 query geometry vs f32 stored data ---

    /// True iff stored point `p` lies inside the `f64` query window.
    #[inline]
    pub fn window_contains_point(lo: &[f64], hi: &[f64], p: &[f32]) -> bool {
        debug_assert_eq!(lo.len(), p.len());
        lo.iter()
            .zip(hi)
            .zip(p)
            .all(|((&l, &h), &v)| l <= v as f64 && v as f64 <= h)
    }

    /// True iff the `f64` query window intersects the stored `f32` box.
    #[inline]
    pub fn window_intersects(wlo: &[f64], whi: &[f64], blo: &[f32], bhi: &[f32]) -> bool {
        wlo.iter().zip(bhi).all(|(&w, &b)| w <= b as f64)
            && blo.iter().zip(whi).all(|(&b, &w)| b as f64 <= w)
    }

    /// True iff the stored `f32` box lies fully inside the `f64` query
    /// window (boundary inclusive) — every point below it is a hit.
    #[inline]
    pub fn window_contains_box(wlo: &[f64], whi: &[f64], blo: &[f32], bhi: &[f32]) -> bool {
        wlo.iter().zip(blo).all(|(&w, &b)| w <= b as f64)
            && bhi.iter().zip(whi).all(|(&b, &w)| b as f64 <= w)
    }

    /// MINDIST: squared `f64` distance from query point `q` to the
    /// nearest point of the stored box.
    #[inline]
    pub fn min_dist2(lo: &[f32], hi: &[f32], q: &[f64]) -> f64 {
        debug_assert_eq!(lo.len(), q.len());
        let mut acc = 0.0;
        for ((&v, &l), &h) in q.iter().zip(lo).zip(hi) {
            let (l, h) = (l as f64, h as f64);
            let d = if v < l {
                l - v
            } else if v > h {
                v - h
            } else {
                0.0
            };
            acc += d * d;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_rect_roundtrip() {
        let r = Rect::point(&[1.0, -2.0, 3.5]);
        assert_eq!(r.lo(), &[1.0, -2.0, 3.5]);
        assert_eq!(r.hi(), &[1.0, -2.0, 3.5]);
        assert_eq!(r.area(), 0.0);
        assert!(r.contains_point(&[1.0, -2.0, 3.5]));
    }

    #[test]
    fn centered_cube_is_the_paper_window() {
        // W(G(q), w) = [g_j - w/2, g_j + w/2] per dimension (Eq. 8).
        let r = Rect::centered_cube(&[0.0, 10.0], 4.0);
        assert_eq!(r.lo(), &[-2.0, 8.0]);
        assert_eq!(r.hi(), &[2.0, 12.0]);
        assert!(r.contains_point(&[-2.0, 12.0])); // boundary inclusive
        assert!(!r.contains_point(&[-2.1, 10.0]));
    }

    #[test]
    fn intersection_and_containment() {
        let a = Rect::new(&[0.0, 0.0], &[2.0, 2.0]);
        let b = Rect::new(&[1.0, 1.0], &[3.0, 3.0]);
        let c = Rect::new(&[2.5, 2.5], &[4.0, 4.0]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(b.intersects(&c));
        assert!(a.contains_rect(&Rect::new(&[0.5, 0.5], &[1.5, 1.5])));
        assert!(!a.contains_rect(&b));
        // touching edges count as intersecting
        assert!(a.intersects(&Rect::new(&[2.0, 0.0], &[3.0, 1.0])));
    }

    #[test]
    fn areas_margins_overlap() {
        let a = Rect::new(&[0.0, 0.0], &[2.0, 3.0]);
        let b = Rect::new(&[1.0, 1.0], &[3.0, 5.0]);
        assert_eq!(a.area(), 6.0);
        assert_eq!(a.margin(), 5.0);
        assert_eq!(a.overlap_area(&b), 1.0 * 2.0);
        assert_eq!(a.union(&b).area(), 3.0 * 5.0);
        assert_eq!(a.enlargement(&b), 15.0 - 6.0);
        let far = Rect::new(&[10.0, 10.0], &[11.0, 11.0]);
        assert_eq!(a.overlap_area(&far), 0.0);
    }

    #[test]
    fn min_dist2_cases() {
        let r = Rect::new(&[0.0, 0.0], &[2.0, 2.0]);
        assert_eq!(r.min_dist2(&[1.0, 1.0]), 0.0); // inside
        assert_eq!(r.min_dist2(&[3.0, 1.0]), 1.0); // right face
        assert_eq!(r.min_dist2(&[3.0, 3.0]), 2.0); // corner
        assert_eq!(r.min_dist2(&[-2.0, 1.0]), 4.0); // left face
    }

    #[test]
    fn geom_matches_rect_methods_on_exact_values() {
        // Small integers are exact in both f32 and f64, so the f32 arena
        // geometry must agree with the f64 Rect reference bit for bit.
        let (alo, ahi) = ([0.0f32, -1.0], [2.0f32, 3.0]);
        let (blo, bhi) = ([1.0f32, 0.0], [4.0f32, 1.0]);
        let a = Rect::new(&[0.0, -1.0], &[2.0, 3.0]);
        let b = Rect::new(&[1.0, 0.0], &[4.0, 1.0]);
        assert_eq!(geom::area(&alo, &ahi), a.area());
        assert_eq!(geom::margin(&alo, &ahi), a.margin());
        assert_eq!(
            geom::overlap_area(&alo, &ahi, &blo, &bhi),
            a.overlap_area(&b)
        );
        assert_eq!(geom::union_area(&alo, &ahi, &blo, &bhi), a.union(&b).area());
        assert_eq!(geom::enlargement(&alo, &ahi, &blo, &bhi), a.enlargement(&b));
        let (olo, ohi) = ([3.0f32, -2.0], [5.0f32, 4.0]);
        let o = Rect::new(&[3.0, -2.0], &[5.0, 4.0]);
        assert_eq!(
            geom::overlap_area_of_union(&alo, &ahi, &blo, &bhi, &olo, &ohi),
            a.union(&b).overlap_area(&o)
        );
        assert_eq!(
            geom::center_dist2(&alo, &ahi, &blo, &bhi),
            a.center_dist2(&b)
        );
    }

    #[test]
    fn mixed_precision_window_predicates() {
        let wlo = [0.0f64, 0.0];
        let whi = [2.0f64, 2.0];
        assert!(geom::window_contains_point(&wlo, &whi, &[1.0f32, 2.0]));
        assert!(!geom::window_contains_point(&wlo, &whi, &[1.0f32, 2.1]));
        assert!(geom::window_intersects(
            &wlo,
            &whi,
            &[2.0f32, 0.0],
            &[3.0f32, 1.0]
        ));
        assert!(!geom::window_intersects(
            &wlo,
            &whi,
            &[2.5f32, 0.0],
            &[3.0f32, 1.0]
        ));
        assert_eq!(
            geom::min_dist2(&[0.0f32, 0.0], &[2.0f32, 2.0], &[3.0, 3.0]),
            2.0
        );
        assert_eq!(
            geom::min_dist2(&[0.0f32, 0.0], &[2.0f32, 2.0], &[1.0, 1.0]),
            0.0
        );
    }

    // The construction contract is debug-checked only (see the type-level
    // docs): these panics exist in test/debug profiles, not in release.
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_rect_panics_in_debug() {
        Rect::new(&[1.0], &[0.0]);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_point_panics_in_debug() {
        Rect::point(&[f64::NAN]);
    }
}
