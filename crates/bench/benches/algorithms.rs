//! Criterion benchmarks of single (c,k)-ANN queries for every algorithm
//! on a shared 10k-point clustered dataset — the per-query cost picture
//! behind Table IV.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dblsh_bench::{Algo, Env};
use dblsh_data::synthetic::MixtureConfig;

fn bench_queries(c: &mut Criterion) {
    let mut g = c.benchmark_group("single_query_k10");
    g.sample_size(20);
    let env = Env::from_config(
        "bench-10k".into(),
        &MixtureConfig {
            n: 10_000,
            dim: 64,
            clusters: 64,
            cluster_std: 1.0,
            spread: 50.0,
            noise_frac: 0.05,
            seed: 99,
        },
    );
    let query: Vec<f32> = env.queries.point(0).to_vec();
    for algo in [
        Algo::DbLsh,
        Algo::FbLsh,
        Algo::E2Lsh,
        Algo::Qalsh,
        Algo::Vhp,
        Algo::R2Lsh,
        Algo::PmLsh,
        Algo::LsbForest,
        Algo::LccsLsh,
        Algo::Linear,
    ] {
        let (index, _) = algo.build(&env, 1.5);
        g.bench_function(algo.name(), |b| {
            b.iter(|| index.search(black_box(&query), 10));
        });
    }
    g.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("index_build_5k");
    g.sample_size(10);
    let env = Env::from_config(
        "build-5k".into(),
        &MixtureConfig {
            n: 5_000,
            dim: 64,
            clusters: 32,
            cluster_std: 1.0,
            spread: 50.0,
            noise_frac: 0.05,
            seed: 7,
        },
    );
    for algo in [Algo::DbLsh, Algo::FbLsh, Algo::PmLsh, Algo::Qalsh] {
        g.bench_function(algo.name(), |b| {
            b.iter(|| {
                let (index, _) = algo.build(black_box(&env), 1.5);
                black_box(index.index_size_bytes())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_queries, bench_build);
criterion_main!(benches);
