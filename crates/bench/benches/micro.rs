//! Criterion micro-benchmarks for the substrates: special functions, hash
//! projection throughput, the fused verification kernel, R*-tree
//! construction and window queries (over the production locality-relabeled
//! layout, with an identity-order comparison), and B+-tree cursor
//! expansion.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dblsh_bptree::BPlusTree;
use dblsh_core::GaussianHasher;
use dblsh_data::dataset::sq_dist;
use dblsh_data::kernels::sq_dist_block;
use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};
use dblsh_index::{str_order, RStarTree, Rect, StridedCoords};
use dblsh_math::{normal_cdf, p_dynamic, rho_dynamic};

fn bench_math(c: &mut Criterion) {
    let mut g = c.benchmark_group("math");
    g.bench_function("normal_cdf", |b| {
        b.iter(|| normal_cdf(black_box(1.234)));
    });
    g.bench_function("p_dynamic", |b| {
        b.iter(|| p_dynamic(black_box(1.5), black_box(9.0)));
    });
    g.bench_function("rho_dynamic", |b| {
        b.iter(|| rho_dynamic(black_box(1.5), black_box(9.0)));
    });
    g.finish();
}

fn bench_hashing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashing");
    for dim in [128usize, 960] {
        let hasher = GaussianHasher::new(dim, 10, 5, 1);
        let point: Vec<f32> = (0..dim).map(|i| i as f32 * 0.01).collect();
        let mut out = vec![0.0f64; 10];
        g.bench_with_input(BenchmarkId::new("project_k10", dim), &dim, |b, _| {
            b.iter(|| hasher.project_into(0, black_box(&point), &mut out));
        });
    }
    g.finish();
}

fn projected_cloud(n: usize, k: usize) -> (Vec<u32>, Vec<f32>, Vec<f64>) {
    let data = gaussian_mixture(&MixtureConfig {
        n,
        dim: 32,
        clusters: 40,
        seed: 3,
        ..Default::default()
    });
    let hasher = GaussianHasher::new(32, k, 1, 2);
    let proj = hasher.project_all(0, data.flat());
    let proj32: Vec<f32> = proj.iter().map(|&v| v as f32).collect();
    let center = proj[..k].to_vec();
    ((0..n as u32).collect(), proj32, center)
}

fn bench_rtree_100k(c: &mut Criterion) {
    // The acceptance benchmark for the hot-path layout: window-query and
    // k-NN throughput over a 100k-point projected cloud at K = 10, in the
    // layout DbLsh::build actually produces — points relabeled to tree-0
    // STR leaf order, so every leaf is a contiguous run of store rows.
    // `knn_10_identity` keeps the insertion-order variant to measure what
    // the relabeling buys (scatter reads during best-first leaf expansion
    // were the PR 2 knn regression).
    let mut g = c.benchmark_group("rstar_tree_100k");
    g.sample_size(20);
    let (ids, proj, center) = projected_cloud(100_000, 10);
    let order = str_order(&StridedCoords::flat(10, &proj), &ids, 32);
    let mut relabeled = vec![0.0f32; proj.len()];
    for (int, &ext) in order.iter().enumerate() {
        let s = ext as usize * 10;
        relabeled[int * 10..(int + 1) * 10].copy_from_slice(&proj[s..s + 10]);
    }
    let src = StridedCoords::flat(10, &relabeled);
    let tree = RStarTree::bulk_load(&src, &ids);
    for width in [10.0f64, 40.0, 120.0] {
        let window = Rect::centered_cube(&center, width);
        g.bench_with_input(
            BenchmarkId::new("window_query", width as u64),
            &window,
            |b, w| {
                b.iter(|| {
                    let mut count = 0usize;
                    for item in tree.window(&src, black_box(w)) {
                        count += 1;
                        black_box(item);
                    }
                    count
                });
            },
        );
    }
    g.bench_function("knn_10", |b| {
        b.iter(|| tree.k_nearest(&src, black_box(&center), 10));
    });
    let id_src = StridedCoords::flat(10, &proj);
    let id_tree = RStarTree::bulk_load(&id_src, &ids);
    g.bench_function("knn_10_identity", |b| {
        b.iter(|| id_tree.k_nearest(&id_src, black_box(&center), 10));
    });
    g.finish();
}

fn bench_verify(c: &mut Criterion) {
    // The verification stage in isolation: one query against 256
    // candidate rows of a 100k x 128 dataset, scalar loop vs the fused
    // block kernel, with the candidate rows either scattered across the
    // dataset (identity-order ids: the pre-relabel access pattern) or
    // clustered into a few leaf-sized runs (what locality relabeling
    // makes of a window's candidates).
    let mut g = c.benchmark_group("verify");
    let n = 100_000usize;
    let dim = 128usize;
    let data = gaussian_mixture(&MixtureConfig {
        n,
        dim,
        clusters: 40,
        seed: 9,
        ..Default::default()
    });
    let flat = data.flat();
    let q = data.point(0).to_vec();
    let cands = 256usize;
    let scattered: Vec<u32> = {
        let mut v: Vec<u32> = (0..cands as u32)
            .map(|i| i * (n as u32 / cands as u32))
            .collect();
        v.sort_unstable();
        v
    };
    let clustered: Vec<u32> = (0..cands as u32)
        .map(|i| (i / 32) * (n as u32 / 8) + (i % 32))
        .collect();
    let mut out = vec![0.0f32; cands];
    for (label, ids) in [("scattered", &scattered), ("clustered", &clustered)] {
        g.bench_function(format!("sq_dist_scalar_256_{label}").as_str(), |b| {
            b.iter(|| {
                let mut acc = 0.0f32;
                for &id in black_box(ids.as_slice()) {
                    acc += sq_dist(&q, &flat[id as usize * dim..(id as usize + 1) * dim]);
                }
                acc
            });
        });
        g.bench_function(format!("sq_dist_block_256_{label}").as_str(), |b| {
            b.iter(|| {
                sq_dist_block(&q, flat, dim, black_box(ids.as_slice()), &mut out);
                out[cands - 1]
            });
        });
    }
    g.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rstar_tree");
    g.sample_size(20);
    let (ids, proj, center) = projected_cloud(20_000, 10);
    let src = StridedCoords::flat(10, &proj);

    g.bench_function("bulk_load_20k_k10", |b| {
        b.iter(|| RStarTree::bulk_load(&src, black_box(&ids)));
    });

    let tree = RStarTree::bulk_load(&src, &ids);
    for width in [5.0f64, 20.0, 80.0] {
        let window = Rect::centered_cube(&center, width);
        g.bench_with_input(
            BenchmarkId::new("window_query", width as u64),
            &window,
            |b, w| {
                b.iter(|| {
                    let mut count = 0usize;
                    for item in tree.window(&src, black_box(w)) {
                        count += 1;
                        black_box(item);
                    }
                    count
                });
            },
        );
    }
    g.bench_function("knn_10", |b| {
        b.iter(|| tree.k_nearest(&src, black_box(&center), 10));
    });
    g.finish();
}

fn bench_bptree(c: &mut Criterion) {
    let mut g = c.benchmark_group("bptree");
    g.sample_size(20);
    let pairs: Vec<(f64, u32)> = (0..100_000)
        .map(|i| ((i as f64 * 0.37).sin() * 1e4, i as u32))
        .collect();
    let mut sorted = pairs.clone();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

    g.bench_function("bulk_build_100k", |b| {
        b.iter(|| BPlusTree::bulk_build(black_box(&sorted)));
    });

    let tree = BPlusTree::bulk_build(&sorted);
    g.bench_function("cursor_expand_1k", |b| {
        b.iter(|| {
            let mut cur = tree.cursor_at(black_box(0.0));
            let mut acc = 0u64;
            for _ in 0..1000 {
                match cur.next_closest(0.0) {
                    Some((_, v)) => acc += v as u64,
                    None => break,
                }
            }
            acc
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_math,
    bench_hashing,
    bench_verify,
    bench_rtree,
    bench_rtree_100k,
    bench_bptree
);
criterion_main!(benches);
