//! Experiment harness reproducing every table and figure of the DB-LSH
//! paper's evaluation (Section VI).
//!
//! Each table/figure has a dedicated binary under `src/bin/`; see
//! `DESIGN.md` §5 for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured results. The shared machinery here prepares
//! datasets (synthetic clones of Table III via [`dblsh_data::registry`]),
//! builds every algorithm behind one enum, and evaluates queries with the
//! paper's metrics.
//!
//! Environment knobs (all optional):
//! * `DBLSH_SCALE` — multiplier on the per-dataset default scales (e.g.
//!   `DBLSH_SCALE=0.5` halves every dataset; default 1.0);
//! * `DBLSH_QUERIES` — number of query points (default 100, as in the
//!   paper);
//! * `DBLSH_DATASETS` — comma-separated subset of dataset names for the
//!   overview table (default: the seven small/medium sets).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use dblsh_baselines::{
    e2lsh::E2LshParams, lccs::LccsParams, lsb::LsbParams, pm_lsh::PmLshParams, qalsh::QalshParams,
    r2lsh::R2LshParams, vhp::VhpParams, E2Lsh, FbLsh, LccsLsh, LinearScan, LsbForest, PmLsh, Qalsh,
    R2Lsh, Vhp,
};
use dblsh_core::{DbLsh, DbLshParams};
use dblsh_data::registry::PaperDataset;
use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};
use dblsh_data::{exact_knn, metrics, AnnIndex, Dataset, Neighbor};

/// Default evaluation scale per dataset: chosen so the whole grid runs on
/// a laptop while preserving each dataset's relative size ordering.
pub fn default_scale(d: PaperDataset) -> f64 {
    match d {
        PaperDataset::Audio => 0.2,
        PaperDataset::Mnist | PaperDataset::Cifar => 0.2,
        PaperDataset::Trevi => 0.05,
        PaperDataset::Nus => 0.1,
        PaperDataset::Deep1M | PaperDataset::Gist => 0.02,
        PaperDataset::Sift10M => 0.005,
        PaperDataset::TinyImages80M => 0.0005,
        PaperDataset::Sift100M => 0.0005,
    }
}

/// The seven datasets the default overview run covers (the paper's three
/// largest are included at reduced scale when explicitly requested).
pub fn default_datasets() -> Vec<PaperDataset> {
    vec![
        PaperDataset::Audio,
        PaperDataset::Mnist,
        PaperDataset::Cifar,
        PaperDataset::Trevi,
        PaperDataset::Nus,
        PaperDataset::Deep1M,
        PaperDataset::Gist,
    ]
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A prepared experiment environment: dataset, queries carved out of it,
/// lazily cached ground truth and a radius-ladder hint.
pub struct Env {
    pub label: String,
    pub data: Arc<Dataset>,
    pub queries: Dataset,
    truth: HashMap<usize, Vec<Vec<Neighbor>>>,
    /// Estimated starting radius for ladder-based methods.
    pub r_hint: f64,
}

impl Env {
    /// Prepare a paper dataset clone at its default scale (times the
    /// `DBLSH_SCALE` multiplier).
    pub fn paper(dataset: PaperDataset) -> Env {
        let scale = (default_scale(dataset) * env_f64("DBLSH_SCALE", 1.0)).min(1.0);
        let cfg = dataset.config(scale);
        Env::from_config(dataset.name().to_string(), &cfg)
    }

    /// Prepare from an explicit mixture configuration.
    pub fn from_config(label: String, cfg: &MixtureConfig) -> Env {
        let mut data = gaussian_mixture(cfg);
        let n_queries = env_usize("DBLSH_QUERIES", 100).min(data.len() / 2);
        let queries = split_queries(&mut data, n_queries, cfg.seed ^ 0xABCD);
        let mut env = Env {
            label,
            data: Arc::new(data),
            queries,
            truth: HashMap::new(),
            r_hint: 1.0,
        };
        env.r_hint = env.estimate_r_hint();
        env
    }

    /// Subsample the environment's dataset to its first `n` rows (fresh
    /// queries are re-carved). Used by the "effect of n" experiment.
    pub fn shrink_to(&self, n: usize) -> Env {
        let n = n.min(self.data.len());
        let dim = self.data.dim();
        let mut data = Dataset::from_flat(dim, self.data.flat()[..n * dim].to_vec());
        let n_queries = env_usize("DBLSH_QUERIES", 100).min(data.len() / 2);
        let queries = split_queries(&mut data, n_queries, 0x5EED);
        let mut env = Env {
            label: format!("{}@{}", self.label, n),
            data: Arc::new(data),
            queries,
            truth: HashMap::new(),
            r_hint: 1.0,
        };
        env.r_hint = env.estimate_r_hint();
        env
    }

    /// Median NN distance over a query sample, divided by c^4 — a ladder
    /// start safely below the typical NN radius (a few empty rounds cost
    /// only O(L log n) each; starting *above* the NN radius lets the first
    /// probe accept far points, destroying recall).
    fn estimate_r_hint(&self) -> f64 {
        let sample = self.queries.len().min(15);
        if sample == 0 || self.data.is_empty() {
            return 1.0;
        }
        let probe = Dataset::from_flat(
            self.queries.dim(),
            self.queries.flat()[..sample * self.queries.dim()].to_vec(),
        );
        let nn = exact_knn(&self.data, &probe, 1);
        let mut dists: Vec<f64> = nn
            .iter()
            .filter_map(|v| v.first())
            .map(|n| n.dist as f64)
            .filter(|&d| d > 0.0)
            .collect();
        if dists.is_empty() {
            return 1.0;
        }
        dists.sort_by(f64::total_cmp);
        dists[dists.len() / 2] / 1.5f64.powi(4)
    }

    /// Ground truth for `k`, cached across evaluations.
    pub fn truth(&mut self, k: usize) -> &Vec<Vec<Neighbor>> {
        if !self.truth.contains_key(&k) {
            let t = exact_knn(&self.data, &self.queries, k);
            self.truth.insert(k, t);
        }
        &self.truth[&k]
    }
}

/// Every algorithm in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    DbLsh,
    FbLsh,
    E2Lsh,
    Qalsh,
    Vhp,
    R2Lsh,
    PmLsh,
    LsbForest,
    LccsLsh,
    Linear,
}

impl Algo {
    /// The Table IV lineup (paper order), linear scan excluded.
    pub const TABLE4: [Algo; 7] = [
        Algo::DbLsh,
        Algo::FbLsh,
        Algo::LccsLsh,
        Algo::PmLsh,
        Algo::R2Lsh,
        Algo::Vhp,
        Algo::LsbForest,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            Algo::DbLsh => "DB-LSH",
            Algo::FbLsh => "FB-LSH",
            Algo::E2Lsh => "E2LSH",
            Algo::Qalsh => "QALSH",
            Algo::Vhp => "VHP",
            Algo::R2Lsh => "R2LSH",
            Algo::PmLsh => "PM-LSH",
            Algo::LsbForest => "LSB-Forest",
            Algo::LccsLsh => "LCCS-LSH",
            Algo::Linear => "LinearScan",
        }
    }

    /// Build this algorithm over `env` with the paper's default settings
    /// (approximation ratio `c`), returning the index and build seconds.
    pub fn build(&self, env: &Env, c: f64) -> (Box<dyn AnnIndex>, f64) {
        let data = Arc::clone(&env.data);
        let n = data.len();
        let r_hint = env.r_hint.max(f64::MIN_POSITIVE);
        let start = Instant::now();
        let index: Box<dyn AnnIndex> = match self {
            Algo::DbLsh => {
                let p = DbLshParams::paper_defaults(n).with_c(c).with_r_min(r_hint);
                Box::new(DbLsh::build(data, &p).expect("DB-LSH build"))
            }
            Algo::FbLsh => {
                let p = DbLshParams::paper_defaults(n).with_c(c).with_r_min(r_hint);
                Box::new(FbLsh::build(data, &p, 24))
            }
            Algo::E2Lsh => {
                let mut p = E2LshParams::paper_like(n).with_r_min(r_hint);
                p.c = c;
                p.w0 = 4.0 * c * c;
                Box::new(E2Lsh::build(data, &p))
            }
            Algo::Qalsh => {
                let p = QalshParams::derive(n, c).with_r_min(r_hint);
                Box::new(Qalsh::build(data, &p))
            }
            Algo::Vhp => {
                let p = VhpParams::derive(n, c).with_r_min(r_hint);
                Box::new(Vhp::build(data, &p))
            }
            Algo::R2Lsh => {
                let p = R2LshParams::derive(n, c).with_r_min(r_hint);
                Box::new(R2Lsh::build(data, &p))
            }
            Algo::PmLsh => {
                let p = PmLshParams {
                    c,
                    ..Default::default()
                };
                Box::new(PmLsh::build(data, &p))
            }
            Algo::LsbForest => {
                let p = LsbParams {
                    c: c.max(2.0),
                    ..Default::default()
                };
                Box::new(LsbForest::build(data, &p))
            }
            Algo::LccsLsh => Box::new(LccsLsh::build(data, &LccsParams::default())),
            Algo::Linear => Box::new(LinearScan::build(data)),
        };
        (index, start.elapsed().as_secs_f64())
    }
}

/// One evaluation row: the paper's four per-cell metrics.
#[derive(Debug, Clone)]
pub struct EvalRow {
    pub algo: String,
    pub query_ms: f64,
    pub ratio: f64,
    pub recall: f64,
    pub index_s: f64,
    pub index_mb: f64,
    pub candidates: f64,
}

/// Run all queries of `env` at `k` through `index` and score them.
pub fn evaluate(index: &dyn AnnIndex, env: &mut Env, k: usize, index_s: f64) -> EvalRow {
    let truth = env.truth(k).clone();
    let nq = env.queries.len();
    let mut ratios = Vec::with_capacity(nq);
    let mut recalls = Vec::with_capacity(nq);
    let mut candidates = Vec::with_capacity(nq);
    let start = Instant::now();
    let mut results = Vec::with_capacity(nq);
    for qi in 0..nq {
        results.push(
            index
                .search(env.queries.point(qi), k)
                .expect("well-formed query rejected"),
        );
    }
    let total_ms = start.elapsed().as_secs_f64() * 1e3;
    for (qi, res) in results.iter().enumerate() {
        ratios.push(metrics::overall_ratio(&res.neighbors, &truth[qi]));
        recalls.push(metrics::recall(&res.neighbors, &truth[qi]));
        candidates.push(res.stats.candidates as f64);
    }
    // Infinite ratios (empty answers) are reported as the worst finite+1
    let finite: Vec<f64> = ratios.iter().copied().filter(|r| r.is_finite()).collect();
    let ratio = if finite.is_empty() {
        f64::INFINITY
    } else {
        metrics::mean(&finite)
    };
    EvalRow {
        algo: index.name().to_string(),
        query_ms: total_ms / nq as f64,
        ratio,
        recall: metrics::mean(&recalls),
        index_s,
        index_mb: index.index_size_bytes() as f64 / (1024.0 * 1024.0),
        candidates: metrics::mean(&candidates),
    }
}

/// Print an aligned metrics table.
pub fn print_rows(title: &str, rows: &[EvalRow]) {
    println!("\n== {title} ==");
    println!(
        "{:<12} {:>12} {:>9} {:>8} {:>10} {:>9} {:>11}",
        "Algorithm", "Query(ms)", "Ratio", "Recall", "Index(s)", "Size(MB)", "Candidates"
    );
    for r in rows {
        println!(
            "{:<12} {:>12.3} {:>9.4} {:>8.4} {:>10.3} {:>9.2} {:>11.0}",
            r.algo, r.query_ms, r.ratio, r.recall, r.index_s, r.index_mb, r.candidates
        );
    }
}

/// Minimal JSON emission for `BENCH_*.json` artifacts — enough for the
/// `--json` flags of `loadgen` and `saturate` to write machine-readable
/// throughput/latency records without any external dependency.
pub mod json {
    use std::fmt::Write as _;

    /// A JSON value. Build with the [`obj`]/[`arr`] helpers and the
    /// `From` impls; serialize with [`Json::to_pretty`] or write
    /// straight to disk with [`write_json_file`].
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        Null,
        Bool(bool),
        /// Finite numbers only; NaN/infinity serialize as `null`
        /// (JSON has no spelling for them).
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(Vec<(String, Json)>),
    }

    impl From<bool> for Json {
        fn from(v: bool) -> Json {
            Json::Bool(v)
        }
    }
    impl From<f64> for Json {
        fn from(v: f64) -> Json {
            Json::Num(v)
        }
    }
    impl From<u64> for Json {
        fn from(v: u64) -> Json {
            Json::Num(v as f64)
        }
    }
    impl From<usize> for Json {
        fn from(v: usize) -> Json {
            Json::Num(v as f64)
        }
    }
    impl From<&str> for Json {
        fn from(v: &str) -> Json {
            Json::Str(v.to_string())
        }
    }
    impl From<String> for Json {
        fn from(v: String) -> Json {
            Json::Str(v)
        }
    }
    impl From<Vec<Json>> for Json {
        fn from(v: Vec<Json>) -> Json {
            Json::Arr(v)
        }
    }

    /// An object from `(key, value)` pairs, preserving insertion order.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// An array from anything convertible to [`Json`].
    pub fn arr<T: Into<Json>>(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    fn escape(s: &str, out: &mut String) {
        out.push('"');
        for ch in s.chars() {
            match ch {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    fn write_value(v: &Json, indent: usize, out: &mut String) {
        let pad = |n: usize, out: &mut String| out.push_str(&"  ".repeat(n));
        match v {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if *n == n.trunc() && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => escape(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(indent + 1, out);
                    write_value(item, indent + 1, out);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                pad(indent, out);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, val)) in pairs.iter().enumerate() {
                    pad(indent + 1, out);
                    escape(k, out);
                    out.push_str(": ");
                    write_value(val, indent + 1, out);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                pad(indent, out);
                out.push('}');
            }
        }
    }

    impl Json {
        /// Pretty-printed JSON text (2-space indent, trailing newline).
        pub fn to_pretty(&self) -> String {
            let mut out = String::new();
            write_value(self, 0, &mut out);
            out.push('\n');
            out
        }
    }

    /// Write a pretty-printed JSON artifact (e.g. `BENCH_loadgen.json`).
    pub fn write_json_file(path: &str, value: &Json) -> std::io::Result<()> {
        std::fs::write(path, value.to_pretty())
    }
}

/// Datasets selected via `DBLSH_DATASETS`, or the default seven.
pub fn selected_datasets() -> Vec<PaperDataset> {
    match std::env::var("DBLSH_DATASETS") {
        Ok(list) => {
            let wanted: Vec<String> = list
                .split(',')
                .map(|s| s.trim().to_ascii_lowercase())
                .collect();
            PaperDataset::ALL
                .into_iter()
                .filter(|d| wanted.iter().any(|w| w == &d.name().to_ascii_lowercase()))
                .collect()
        }
        Err(_) => default_datasets(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_env() -> Env {
        Env::from_config(
            "tiny".into(),
            &MixtureConfig {
                n: 1200,
                dim: 16,
                clusters: 12,
                cluster_std: 1.0,
                spread: 50.0,
                noise_frac: 0.02,
                seed: 5,
            },
        )
    }

    #[test]
    fn env_preparation() {
        let mut env = tiny_env();
        assert!(!env.queries.is_empty());
        assert!(env.r_hint > 0.0);
        let nq = env.queries.len();
        let t = env.truth(5);
        assert_eq!(t.len(), nq);
        assert!(t.iter().all(|v| v.len() == 5));
    }

    #[test]
    fn every_algorithm_builds_and_answers() {
        let mut env = tiny_env();
        for algo in [
            Algo::DbLsh,
            Algo::FbLsh,
            Algo::E2Lsh,
            Algo::Qalsh,
            Algo::Vhp,
            Algo::R2Lsh,
            Algo::PmLsh,
            Algo::LsbForest,
            Algo::LccsLsh,
            Algo::Linear,
        ] {
            let (index, build_s) = algo.build(&env, 1.5);
            let row = evaluate(index.as_ref(), &mut env, 5, build_s);
            assert!(row.recall >= 0.0 && row.recall <= 1.0, "{}", algo.name());
            assert!(
                row.ratio >= 1.0 - 1e-6,
                "{}: ratio {} below 1",
                algo.name(),
                row.ratio
            );
            assert!(row.query_ms >= 0.0);
        }
    }

    #[test]
    fn linear_scan_is_exact_reference() {
        let mut env = tiny_env();
        let (index, s) = Algo::Linear.build(&env, 1.5);
        let row = evaluate(index.as_ref(), &mut env, 10, s);
        assert!((row.recall - 1.0).abs() < 1e-9);
        assert!((row.ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shrink_produces_smaller_env() {
        let env = tiny_env();
        let small = env.shrink_to(400);
        assert!(small.data.len() <= 400);
        assert_eq!(small.data.dim(), env.data.dim());
    }

    #[test]
    fn json_emission_is_well_formed() {
        use super::json::{arr, obj, Json};
        let doc = obj(vec![
            ("name", "load\"gen".into()),
            ("qps", 1234.5.into()),
            ("requests", 2000usize.into()),
            ("ok", true.into()),
            ("nan", f64::NAN.into()),
            ("p", arr(vec![1.0f64, 2.5])),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = doc.to_pretty();
        assert!(text.contains("\"load\\\"gen\""), "{text}");
        assert!(text.contains("\"qps\": 1234.5"), "{text}");
        assert!(text.contains("\"requests\": 2000"), "{text}");
        assert!(text.contains("\"nan\": null"), "{text}");
        assert!(text.contains("\"empty\": []"), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
    }

    #[test]
    fn scales_are_laptop_sized() {
        for d in PaperDataset::ALL {
            let n = (d.full_cardinality() as f64 * default_scale(d)) as usize;
            assert!(n <= 60_000, "{} default too large: {n}", d.name());
        }
    }
}
