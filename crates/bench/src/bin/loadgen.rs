//! Load generator for the `dblsh-net` TCP front door: replay a
//! seed-deterministic query log against a live [`DbLshServer`] and
//! report QPS and p50/p99 latency (client-observed, recorded in the
//! same log₂ buckets as [`dblsh_serve::EngineStats`], via
//! [`dblsh_serve::LatencyHistogram`]).
//!
//! Two modes:
//!
//! * **Self-hosted** (default, no `--addr`): builds a sharded index +
//!   engine + server on `127.0.0.1:0` in-process, drives it over real
//!   sockets, and — because it also builds the unsharded reference —
//!   asserts one known query's TCP answer is **byte-identical** to
//!   `DbLsh::search_canonical` before generating any load. This is the
//!   CI smoke mode: one command, zero orchestration.
//! * **Remote** (`--addr host:port`): drives an already-running server;
//!   no parity check (the remote data is not ours to rebuild).
//!
//! The query log is derived deterministically from `--seed`.
//! `--record <path>` writes it as standard fvecs before running;
//! `--replay <path>` loads one instead of generating (so a log recorded
//! once can be replayed against any server build forever).
//!
//! Run: `cargo run --release -p dblsh-bench --bin loadgen -- \
//!           --requests 2k --json BENCH_loadgen.json`
//!
//! Flags (all optional): `--addr` target server (default: self-host),
//! `--requests` total (2000; `k`/`m` suffixes), `--connections`
//! concurrent client connections (4), `--pipeline` in-flight requests
//! per connection (8), `--k` neighbors (10), `--n` self-host points
//! (20k), `--dim` (16), `--shards` (4), `--workers` (4), `--queue`
//! engine queue capacity (1024), `--seed` (42), `--trace` set
//! `SearchOptions::trace` on every request so the server's per-stage
//! histograms cover the whole run (self-host mode then asserts the
//! stage sums account for the engine-observed end-to-end latency to
//! within 10%), `--record`/`--replay` query-log fvecs path, `--json`
//! BENCH artifact path, `--metrics-out` path for the raw Prometheus
//! scrape (CI diffs its series structure against a committed golden).
//!
//! After the drive the harness scrapes the server's `Metrics` opcode
//! (Prometheus exposition) over the same wire and folds the per-stage
//! breakdown into the report and the `--json` artifact.

use std::sync::Arc;
use std::time::Instant;

use dblsh_bench::json::{obj, write_json_file};
use dblsh_core::{DbLsh, DbLshBuilder, SearchOptions};
use dblsh_data::io::{load_fvecs_file, write_fvecs};
use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};
use dblsh_data::Dataset;
use dblsh_net::{DbLshClient, DbLshServer, MetricsFormat, Request, Response, ServerConfig};
use dblsh_serve::{Engine, EngineConfig, LatencyHistogram, ShardPolicy, ShardedDbLsh};
use dblsh_telemetry::Stage;
use rand::prelude::*;
use rand::rngs::StdRng;

#[derive(Debug, Clone)]
struct Args {
    addr: Option<String>,
    requests: usize,
    connections: usize,
    pipeline: usize,
    k: usize,
    n: usize,
    dim: usize,
    shards: usize,
    workers: usize,
    queue: usize,
    seed: u64,
    trace: bool,
    record: Option<String>,
    replay: Option<String>,
    json: Option<String>,
    metrics_out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            addr: None,
            requests: 2000,
            connections: 4,
            pipeline: 8,
            k: 10,
            n: 20_000,
            dim: 16,
            shards: 4,
            workers: 4,
            queue: 1024,
            seed: 42,
            trace: false,
            record: None,
            replay: None,
            json: None,
            metrics_out: None,
        }
    }
}

/// Value of one Prometheus exposition series: the first line that is
/// exactly `series` followed by a space and a number.
fn prom_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|line| {
        line.strip_prefix(series)?
            .strip_prefix(' ')?
            .trim()
            .parse()
            .ok()
    })
}

/// Parse `"20k"` / `"1m"` / plain integers.
fn parse_count(s: &str) -> usize {
    let lower = s.trim().to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm']) {
        Some(d) if lower.ends_with('k') => (d, 1_000),
        Some(d) => (d, 1_000_000),
        None => (lower.as_str(), 1),
    };
    digits
        .parse::<usize>()
        .unwrap_or_else(|_| panic!("not a count: {s:?}"))
        * mult
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--addr" => args.addr = Some(value("--addr")),
            "--requests" => args.requests = parse_count(&value("--requests")),
            "--connections" => args.connections = parse_count(&value("--connections")),
            "--pipeline" => args.pipeline = parse_count(&value("--pipeline")),
            "--k" => args.k = parse_count(&value("--k")),
            "--n" => args.n = parse_count(&value("--n")),
            "--dim" => args.dim = parse_count(&value("--dim")),
            "--shards" => args.shards = parse_count(&value("--shards")),
            "--workers" => args.workers = parse_count(&value("--workers")),
            "--queue" => args.queue = parse_count(&value("--queue")),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--trace" => args.trace = true,
            "--record" => args.record = Some(value("--record")),
            "--replay" => args.replay = Some(value("--replay")),
            "--json" => args.json = Some(value("--json")),
            "--metrics-out" => args.metrics_out = Some(value("--metrics-out")),
            other => panic!("unknown flag {other:?} (see the module docs)"),
        }
    }
    args
}

/// The self-hosted target: server + engine kept alive for the run, plus
/// the unsharded reference index for the parity check.
struct SelfHost {
    server: DbLshServer,
    reference: DbLsh,
    data: Arc<Dataset>,
}

fn self_host(args: &Args) -> SelfHost {
    let data = Arc::new(gaussian_mixture(&MixtureConfig {
        n: args.n,
        dim: args.dim,
        clusters: 24,
        cluster_std: 1.0,
        spread: 60.0,
        noise_frac: 0.02,
        seed: args.seed,
    }));
    let builder = DbLshBuilder::new().auto_r_min().seed(args.seed);
    let params = builder
        .resolve_params_for(&data)
        .expect("loadgen parameters");
    let sharded =
        ShardedDbLsh::build_with_params(&data, &params, args.shards, ShardPolicy::RoundRobin)
            .expect("sharded build");
    let reference = DbLsh::build(Arc::clone(&data), &params).expect("reference build");
    let engine = Arc::new(Engine::start(
        Arc::new(sharded),
        EngineConfig {
            workers: args.workers,
            queue_capacity: args.queue,
        },
    ));
    let server = DbLshServer::bind("127.0.0.1:0", engine, ServerConfig::default())
        .expect("bind self-hosted server");
    SelfHost {
        server,
        reference,
        data,
    }
}

/// Seed-deterministic query log: dataset-shaped points with a little
/// noise (self-host mode perturbs real rows so queries land in dense
/// regions; remote mode generates from the seed alone).
fn generate_log(args: &Args, data: Option<&Dataset>) -> Dataset {
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x10AD);
    let count = args.requests.clamp(1, 4096);
    let rows: Vec<Vec<f32>> = match data {
        Some(data) => (0..count)
            .map(|_| {
                let base = data.point(rng.gen_range(0..data.len()));
                base.iter()
                    .map(|v| v + rng.gen_range(-0.5f32..0.5))
                    .collect()
            })
            .collect(),
        None => (0..count)
            .map(|_| (0..args.dim).map(|_| rng.gen_range(-60.0..60.0)).collect())
            .collect(),
    };
    Dataset::from_rows(&rows)
}

fn main() {
    let args = parse_args();
    println!("== loadgen: {args:?} ==");

    let hosted = match &args.addr {
        None => Some(self_host(&args)),
        Some(_) => None,
    };
    let addr = match &args.addr {
        Some(addr) => addr.clone(),
        None => hosted
            .as_ref()
            .expect("self-hosted")
            .server
            .local_addr()
            .to_string(),
    };

    // Query log: replay beats record beats fresh generation.
    let log = Arc::new(match &args.replay {
        Some(path) => load_fvecs_file(path).expect("replay log"),
        None => generate_log(&args, hosted.as_ref().map(|h| &*h.data)),
    });
    assert!(!log.is_empty(), "empty query log");
    if let Some(path) = &args.record {
        let file = std::fs::File::create(path).expect("create record file");
        write_fvecs(std::io::BufWriter::new(file), &log).expect("record log");
        println!("recorded {} queries x {}d to {path}", log.len(), log.dim());
    }

    // Parity gate (self-host only): one known query answered over TCP
    // must be byte-identical to the canonical in-process answer.
    if let Some(h) = &hosted {
        let mut probe = DbLshClient::connect(&addr).expect("parity connect");
        let q = log.point(0).to_vec();
        let wire = probe.knn(&q, args.k).expect("parity query over TCP");
        let local = h
            .reference
            .search_canonical(&q, args.k, &Default::default())
            .expect("parity query in-process");
        let wire_bits: Vec<(u32, u32)> = wire
            .neighbors
            .iter()
            .map(|n| (n.id, n.dist.to_bits()))
            .collect();
        let local_bits: Vec<(u32, u32)> = local
            .neighbors
            .iter()
            .map(|n| (n.id, n.dist.to_bits()))
            .collect();
        assert_eq!(
            wire_bits, local_bits,
            "TCP answer diverged from search_canonical"
        );
        println!(
            "parity: TCP == search_canonical on query 0 ({} neighbors)",
            wire_bits.len()
        );
    }

    // Drive: `--connections` threads, each its own client, pipelining
    // `--pipeline` requests and recording client-observed latency from
    // submit to response in the engine's own log2 buckets.
    let per_conn = args.requests / args.connections.max(1);
    let started = Instant::now();
    let handles: Vec<_> = (0..args.connections.max(1))
        .map(|c| {
            let addr = addr.clone();
            let log = Arc::clone(&log);
            let k = args.k;
            let pipeline = args.pipeline.max(1);
            let trace = args.trace;
            std::thread::spawn(move || {
                let mut client = DbLshClient::connect(&addr).expect("loadgen connect");
                let mut hist = LatencyHistogram::new();
                let mut in_flight: Vec<(dblsh_net::client::RequestId, Instant)> = Vec::new();
                let wait_one = |client: &mut DbLshClient,
                                in_flight: &mut Vec<(dblsh_net::client::RequestId, Instant)>,
                                hist: &mut LatencyHistogram| {
                    let (id, t0) = in_flight.remove(0);
                    match client.wait(id).expect("loadgen response") {
                        Response::Knn(_) => hist.record(t0.elapsed().as_nanos() as u64),
                        Response::Error(e) => panic!("loadgen request failed: {e}"),
                        other => panic!("expected Knn, got {other:?}"),
                    }
                };
                for j in 0..per_conn {
                    let qi = (c * per_conn + j) % log.len();
                    let id = client
                        .submit(&Request::Knn {
                            query: log.point(qi).to_vec(),
                            k: k as u32,
                            opts: SearchOptions {
                                trace,
                                ..Default::default()
                            },
                        })
                        .expect("loadgen submit");
                    in_flight.push((id, Instant::now()));
                    while in_flight.len() >= pipeline {
                        wait_one(&mut client, &mut in_flight, &mut hist);
                    }
                }
                while !in_flight.is_empty() {
                    wait_one(&mut client, &mut in_flight, &mut hist);
                }
                hist
            })
        })
        .collect();
    let mut hist = LatencyHistogram::new();
    for h in handles {
        hist.merge(&h.join().expect("loadgen connection thread"));
    }
    let elapsed = started.elapsed().as_secs_f64();

    let served = hist.count();
    let qps = served as f64 / elapsed;
    let p50 = hist.quantile_us(0.50);
    let p99 = hist.quantile_us(0.99);
    assert_eq!(
        served as usize,
        per_conn * args.connections.max(1),
        "lost responses"
    );
    println!(
        "\nloadgen: {served} requests in {elapsed:.2} s over {} connections \
         (pipeline {}) -> {qps:.0} QPS, p50 {p50:.1} us, p99 {p99:.1} us",
        args.connections, args.pipeline
    );

    // Server-side counters over the same wire (any target that answers
    // Stats), then drain the self-hosted server gracefully.
    let mut probe = DbLshClient::connect(&addr).expect("stats connect");
    let engine_stats = probe.stats().expect("stats over the wire");
    println!(
        "engine: {} searches, {} rejected, queue depth {}, engine p99 {:.1} us",
        engine_stats.searches,
        engine_stats.rejected,
        engine_stats.queue_depth,
        engine_stats.p99_latency_us,
    );

    // Scrape the Metrics opcode over the same wire and pull out the
    // per-stage latency breakdown the traced requests fed.
    let prom = probe
        .metrics(MetricsFormat::Prometheus)
        .expect("metrics over the wire");
    if let Some(path) = &args.metrics_out {
        std::fs::write(path, &prom).expect("write --metrics-out scrape");
        println!(
            "wrote {path} ({} bytes of Prometheus exposition)",
            prom.len()
        );
    }
    let request_sum_s = prom_value(&prom, "dblsh_request_seconds_sum").unwrap_or(0.0);
    let mut stage_sums: Vec<(&'static str, f64)> = Vec::new();
    let mut stage_total_s = 0.0f64;
    for stage in Stage::ALL {
        let series = format!("dblsh_stage_seconds_sum{{stage=\"{}\"}}", stage.name());
        let v = prom_value(&prom, &series).unwrap_or(0.0);
        stage_total_s += v;
        stage_sums.push((stage.name(), v));
    }
    println!("telemetry: engine request_seconds_sum {request_sum_s:.4} s; per-stage sums:");
    for (name, v) in &stage_sums {
        println!(
            "  {name:>11}: {v:>9.4} s ({:5.1}%)",
            100.0 * v / stage_total_s.max(1e-12)
        );
    }
    if args.trace && args.addr.is_none() {
        // Every loadgen request was traced, and `QueryTrace::close`
        // charges unattributed time to the reply stage — so the stage
        // histograms must account for the engine-observed end-to-end
        // latency. The only slack is the lone untraced parity probe.
        let rel = (stage_total_s - request_sum_s).abs() / request_sum_s.max(1e-12);
        assert!(
            rel <= 0.10,
            "per-stage sums ({stage_total_s:.4} s) diverge from end-to-end \
             latency ({request_sum_s:.4} s) by {:.1}%",
            rel * 100.0
        );
        println!(
            "trace closure: stage sums {stage_total_s:.4} s vs end-to-end \
             {request_sum_s:.4} s ({:+.2}%)",
            100.0 * (stage_total_s - request_sum_s) / request_sum_s.max(1e-12)
        );
    }
    drop(probe);
    if let Some(h) = hosted {
        let server_stats = h.server.shutdown();
        println!(
            "server: {} connections, {} requests, {} refused, {} errors",
            server_stats.connections,
            server_stats.requests,
            server_stats.refused,
            server_stats.errors
        );
    }

    if let Some(path) = &args.json {
        let doc = obj(vec![
            ("bench", "loadgen".into()),
            (
                "config",
                obj(vec![
                    (
                        "addr",
                        match &args.addr {
                            Some(a) => a.as_str().into(),
                            None => "self-hosted".into(),
                        },
                    ),
                    ("requests", args.requests.into()),
                    ("connections", args.connections.into()),
                    ("pipeline", args.pipeline.into()),
                    ("k", args.k.into()),
                    ("n", args.n.into()),
                    ("dim", args.dim.into()),
                    ("shards", args.shards.into()),
                    ("workers", args.workers.into()),
                    ("queue", args.queue.into()),
                    ("seed", args.seed.into()),
                ]),
            ),
            ("served", served.into()),
            ("elapsed_s", elapsed.into()),
            ("qps", qps.into()),
            ("p50_latency_us", p50.into()),
            ("p99_latency_us", p99.into()),
            ("engine_searches", engine_stats.searches.into()),
            ("engine_knn_requests", engine_stats.knn_requests.into()),
            ("engine_rcnn_requests", engine_stats.rcnn_requests.into()),
            ("engine_rejected", engine_stats.rejected.into()),
            ("engine_p99_latency_us", engine_stats.p99_latency_us.into()),
            ("engine_uptime_secs", engine_stats.uptime_secs.into()),
            ("trace", args.trace.into()),
            ("engine_request_seconds_sum", request_sum_s.into()),
            (
                "stage_seconds_sum",
                obj(stage_sums
                    .iter()
                    .map(|(name, v)| (*name, (*v).into()))
                    .collect()),
            ),
        ]);
        write_json_file(path, &doc).expect("write --json artifact");
        println!("wrote {path}");
    }
    println!("loadgen OK");
}
