//! Extension experiment (the paper's future work: "more efficient search
//! strategies and early termination conditions"): the discrete radius
//! ladder of Algorithm 2 vs incremental best-first browsing with an
//! estimator-based early stop (I-LSH/EI-LSH style), on the same index.
//!
//! Run: `cargo run -p dblsh-bench --release --bin ablation_incremental`

use std::sync::Arc;
use std::time::Instant;

use dblsh_bench::Env;
use dblsh_core::{DbLsh, DbLshParams};
use dblsh_data::registry::PaperDataset;
use dblsh_data::{metrics, Neighbor};

fn main() {
    let k = 50;
    println!("== Extension: radius ladder vs incremental browsing ==");
    for dataset in [
        PaperDataset::Audio,
        PaperDataset::Deep1M,
        PaperDataset::Gist,
    ] {
        let mut env = Env::paper(dataset);
        let params = DbLshParams::paper_defaults(env.data.len()).with_r_min(env.r_hint);
        let index = DbLsh::build(Arc::clone(&env.data), &params).expect("DB-LSH build");
        let truth = env.truth(k).clone();
        println!(
            "\n-- {} (n = {}, d = {}) --",
            env.label,
            env.data.len(),
            env.data.dim()
        );
        println!(
            "{:<14} {:>12} {:>9} {:>9} {:>11}",
            "Mode", "Query(ms)", "Recall", "Ratio", "Candidates"
        );
        for mode in ["ladder", "incremental"] {
            let start = Instant::now();
            let results: Vec<_> = (0..env.queries.len())
                .map(|qi| {
                    let q = env.queries.point(qi);
                    if mode == "ladder" {
                        index.k_ann(q, k).expect("query")
                    } else {
                        index.k_ann_incremental(q, k).expect("query")
                    }
                })
                .collect();
            let ms = start.elapsed().as_secs_f64() * 1e3 / env.queries.len() as f64;
            let score = |f: &dyn Fn(&[Neighbor], &[Neighbor]) -> f64| {
                let v: Vec<f64> = results
                    .iter()
                    .zip(&truth)
                    .map(|(r, t)| f(&r.neighbors, t))
                    .filter(|v| v.is_finite())
                    .collect();
                metrics::mean(&v)
            };
            let cand = metrics::mean(
                &results
                    .iter()
                    .map(|r| r.stats.candidates as f64)
                    .collect::<Vec<_>>(),
            );
            println!(
                "{:<14} {:>12.3} {:>9.4} {:>9.4} {:>11.0}",
                mode,
                ms,
                score(&|r, t| metrics::recall(r, t)),
                score(&|r, t| metrics::overall_ratio(r, t)),
                cand
            );
        }
    }
    println!(
        "\nShape to verify: comparable accuracy; incremental mode needs no\n\
         r_min tuning and fewer wasted probes on re-scanned inner windows,\n\
         at the price of heap maintenance per candidate."
    );
}
