//! Bench-harness smoke run: build DB-LSH over a tiny synthetic dataset,
//! answer queries, and print the per-component index-size breakdown
//! (shared projection store, flat tree arenas, locality-relabel state)
//! plus the query-latency split (`knn_10` mean and the per-query
//! verification time inside it) and the serving layer's sharded
//! vs unsharded `knn_10` numbers with an engine QPS figure. The engine
//! run finishes by binding the TCP front door, scraping the `Metrics`
//! opcode in both exposition formats over a real socket, and writing
//! the `BENCH_serve.json` artifact CI uploads. Fails loudly — CI runs
//! this so layout, recall, hot-path or serving regressions surface
//! before any full experiment does.
//!
//! Run: `cargo run -p dblsh-bench --release --bin smoke`

use std::sync::Arc;

use dblsh_bench::{evaluate, Env};
use dblsh_core::{DbLsh, DbLshParams, SearchOptions};
use dblsh_data::synthetic::MixtureConfig;
use dblsh_data::{AnnIndex, QueryStats};
use dblsh_serve::{Engine, EngineConfig, ShardPolicy, ShardedDbLsh};
use std::time::Instant;

fn main() {
    let mut env = Env::from_config(
        "smoke".into(),
        &MixtureConfig {
            n: 5_000,
            dim: 24,
            clusters: 25,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed: 7,
        },
    );

    let params = DbLshParams::paper_defaults(env.data.len()).with_r_min(env.r_hint.max(1e-9));
    let start = Instant::now();
    let index = DbLsh::build(Arc::clone(&env.data), &params).expect("smoke build");
    let build_s = start.elapsed().as_secs_f64();

    // Per-component index size: the one shared ProjStore vs the L
    // id-only tree arenas.
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    let breakdown = index.memory_breakdown();
    println!("== index size breakdown ==");
    println!(
        "ProjStore (n x L*K coords, f32): {:>9.3} MB",
        mb(breakdown.proj_store_bytes)
    );
    println!(
        "{} tree arenas (ids + bounds):    {:>9.3} MB",
        index.params().l,
        mb(breakdown.tree_bytes)
    );
    println!(
        "relabel state (maps + rows):     {:>9.3} MB",
        mb(breakdown.relabel_bytes)
    );
    println!(
        "dead (tombstoned) share:         {:>9.3} MB",
        mb(breakdown.dead_bytes)
    );
    assert_eq!(
        breakdown.dead_bytes, 0,
        "fresh build must have no dead rows"
    );
    for (i, s) in index.tree_stats().iter().enumerate() {
        println!(
            "  tree {i}: {} nodes, {} leaf entries, {} inner entries, {:.3} MB",
            s.nodes,
            s.leaf_entries,
            s.inner_entries,
            mb(s.structure_bytes)
        );
    }
    println!(
        "total:                           {:>9.3} MB",
        mb(breakdown.total())
    );
    assert_eq!(breakdown.total(), index.index_size_bytes());

    let row = evaluate(&index, &mut env, 10, build_s);
    println!(
        "\nsmoke eval: recall {:.3}, ratio {:.4}, {:.3} ms/query, {:.0} candidates",
        row.recall, row.ratio, row.query_ms, row.candidates
    );

    // Query-latency split: mean knn_10 wall time and, within it, the
    // per-query verification time (SQ8 bound scan + candidate-block sort +
    // fused distance kernel), measured through the opt-in timing counter —
    // once with the SQ8 quantized pre-filter (the default) and once with
    // every candidate going straight to the exact kernel. Answers must be
    // byte-identical either way; only the speed may differ.
    //
    // The tiny parity dataset above fits entirely in cache, where the exact
    // kernel is compute-bound and nothing can beat it — so the pre-filter is
    // measured on its own DRAM-resident regime (the one the paper's datasets
    // live in), where the exact kernel pays ~4x the memory traffic of the
    // u8 code scan per candidate row.
    {
        let venv = Env::from_config(
            "smoke-verify".into(),
            &MixtureConfig {
                n: 300_000,
                dim: 96,
                clusters: 25,
                cluster_std: 1.0,
                spread: 60.0,
                noise_frac: 0.02,
                seed: 11,
            },
        );
        let vparams =
            DbLshParams::paper_defaults(venv.data.len()).with_r_min(venv.r_hint.max(1e-9));
        let vstart = Instant::now();
        let vindex = DbLsh::build(Arc::clone(&venv.data), &vparams).expect("verify-regime build");
        let nq = venv.queries.len();
        println!(
            "\n== verify-path regime (n={}, dim={}, built in {:.1}s) ==",
            venv.data.len(),
            venv.data.dim(),
            vstart.elapsed().as_secs_f64()
        );
        // Serving traffic never replays a query against a warm cache, but a
        // back-to-back on/off replay of the same query would hand the second
        // run all the first run's candidate rows in LLC. Scrub the cache
        // between timed runs so both options measure the cold-row regime the
        // pre-filter exists for.
        let mut scrub = vec![0u8; 96 * 1024 * 1024];
        let mut evict = || {
            for (i, b) in scrub.iter_mut().enumerate() {
                *b = b.wrapping_add(i as u8);
            }
            std::hint::black_box(&scrub);
        };
        let run_one = |prefilter: bool, qi: usize, total: &mut QueryStats| {
            let opts = SearchOptions {
                time_verification: true,
                prefilter,
                ..Default::default()
            };
            let t = Instant::now();
            let res = vindex
                .search_with(venv.queries.point(qi), 10, &opts)
                .expect("timed smoke query");
            let us = t.elapsed().as_secs_f64() * 1e6;
            total.merge(&res.stats);
            (us, res.neighbors)
        };
        let (mut on_us, mut off_us) = (0.0f64, 0.0f64);
        let mut on_total = QueryStats::default();
        let mut off_total = QueryStats::default();
        for qi in 0..nq {
            evict();
            let off = run_one(false, qi, &mut off_total);
            evict();
            let on = run_one(true, qi, &mut on_total);
            assert_eq!(on.1, off.1, "pre-filter changed answers at query {qi}");
            on_us += on.0;
            off_us += off.0;
        }
        let on_us = on_us / nq as f64;
        let off_us = off_us / nq as f64;
        assert_eq!(
            on_total.candidates, off_total.candidates,
            "pre-filter changed the consumed-candidate count"
        );
        assert_eq!(
            (on_total.rounds, on_total.index_probes),
            (off_total.rounds, off_total.index_probes),
            "pre-filter changed the probing work"
        );
        let screened = on_total.prefilter_pruned + on_total.prefilter_survivors;
        let prune_rate = on_total.prefilter_pruned as f64 / screened.max(1) as f64;
        println!(
            "knn_10 (sq8 prefilter ON):  {:.2} us/query, verification {:.2} us/query \
             ({} candidates/query, {} pruned + {} survivors/query, prune rate {:.1}%)",
            on_us,
            on_total.verify_nanos as f64 / 1e3 / nq as f64,
            on_total.candidates / nq.max(1),
            on_total.prefilter_pruned / nq.max(1),
            on_total.prefilter_survivors / nq.max(1),
            prune_rate * 100.0,
        );
        println!(
            "knn_10 (sq8 prefilter OFF): {:.2} us/query, verification {:.2} us/query \
             ({} candidates/query)",
            off_us,
            off_total.verify_nanos as f64 / 1e3 / nq as f64,
            off_total.candidates / nq.max(1),
        );
        println!(
            "prefilter speedup: knn_10 {:.2}x, verification stage {:.2}x",
            off_us / on_us.max(1e-9),
            off_total.verify_nanos as f64 / on_total.verify_nanos.max(1) as f64,
        );
        assert!(
            on_total.verify_nanos > 0 && off_total.verify_nanos > 0,
            "verification timing not collected"
        );
        assert!(
            on_total.prefilter_pruned > 0,
            "pre-filter pruned nothing across {nq} queries"
        );
        assert_eq!(
            off_total.prefilter_pruned + off_total.prefilter_survivors,
            0,
            "disabled pre-filter must not screen anything"
        );
        let doc = dblsh_bench::json::obj(vec![
            ("bench", "verify".into()),
            ("dataset", "smoke-verify-synthetic".into()),
            ("n", venv.data.len().into()),
            ("dim", venv.data.dim().into()),
            ("queries", nq.into()),
            (
                "simd_arch",
                format!("{:?}", dblsh_data::kernels::simd_arch()).into(),
            ),
            (
                "prefilter_on",
                dblsh_bench::json::obj(vec![
                    ("knn10_us_per_query", on_us.into()),
                    (
                        "verify_us_per_query",
                        (on_total.verify_nanos as f64 / 1e3 / nq as f64).into(),
                    ),
                    ("candidates", on_total.candidates.into()),
                    ("pruned", on_total.prefilter_pruned.into()),
                    ("survivors", on_total.prefilter_survivors.into()),
                    ("prune_rate", prune_rate.into()),
                ]),
            ),
            (
                "prefilter_off",
                dblsh_bench::json::obj(vec![
                    ("knn10_us_per_query", off_us.into()),
                    (
                        "verify_us_per_query",
                        (off_total.verify_nanos as f64 / 1e3 / nq as f64).into(),
                    ),
                    ("candidates", off_total.candidates.into()),
                ]),
            ),
            ("speedup", (off_us / on_us.max(1e-9)).into()),
        ]);
        dblsh_bench::json::write_json_file("BENCH_verify.json", &doc)
            .expect("write BENCH_verify.json");
        println!("wrote BENCH_verify.json (verify-path perf artifact)");
    }

    assert!(row.recall > 0.5, "smoke recall collapsed: {}", row.recall);
    assert!(row.ratio >= 1.0 - 1e-6, "ratio below 1: {}", row.ratio);

    let nq = env.queries.len();

    // Serving layer: sharded vs unsharded knn_10 and engine throughput.
    // Both numbers use the canonical round-exhaustive query mode, so the
    // sharded answers are byte-identical to the unsharded ones — checked
    // here on every query before anything is timed.
    const SHARDS: usize = 4;
    let sharded =
        ShardedDbLsh::build_with_params(&env.data, &params, SHARDS, ShardPolicy::RoundRobin)
            .expect("sharded smoke build");
    let opts = SearchOptions::default();
    for qi in 0..nq {
        let q = env.queries.point(qi);
        let s = sharded.k_ann(q, 10).expect("sharded smoke query");
        let u = index
            .search_canonical(q, 10, &opts)
            .expect("canonical smoke query");
        assert_eq!(s.ids(), u.ids(), "sharded answers diverge at query {qi}");
        assert_eq!(s.stats, u.stats, "sharded work counters diverge");
    }
    let time_per_query = |f: &mut dyn FnMut(usize)| {
        let start = Instant::now();
        for qi in 0..nq {
            f(qi);
        }
        start.elapsed().as_secs_f64() * 1e6 / nq as f64
    };
    let unsharded_us = time_per_query(&mut |qi| {
        index
            .search_canonical(env.queries.point(qi), 10, &opts)
            .expect("canonical smoke query");
    });
    let sharded_us = time_per_query(&mut |qi| {
        sharded
            .k_ann(env.queries.point(qi), 10)
            .expect("sharded smoke query");
    });
    println!(
        "\n== serving smoke ({SHARDS} shards) ==\n\
         knn_10 canonical: unsharded {unsharded_us:.2} us/query, sharded {sharded_us:.2} us/query"
    );

    const REPEATS: usize = 5;
    let engine = Arc::new(Engine::start(
        Arc::new(sharded),
        EngineConfig {
            workers: SHARDS,
            queue_capacity: 256,
        },
    ));
    let estart = Instant::now();
    let tickets: Vec<_> = (0..nq * REPEATS)
        .map(|j| engine.search(env.queries.point(j % nq), 10))
        .collect();
    for t in tickets {
        t.wait().expect("engine smoke query");
    }
    // Snapshot admission-control counters while the engine is live (the
    // queue depth is an instantaneous gauge; post-shutdown it is 0 by
    // construction).
    let live = engine.stats();
    let elapsed = estart.elapsed().as_secs_f64();

    // Scrapeable surface: the TCP front door over the same engine. One
    // traced and one untraced query must answer identically, and both
    // exposition formats must render the full metric catalogue.
    let server = dblsh_net::DbLshServer::bind(
        "127.0.0.1:0",
        Arc::clone(&engine),
        dblsh_net::ServerConfig::default(),
    )
    .expect("bind smoke server");
    let mut client = dblsh_net::DbLshClient::connect(&server.local_addr().to_string())
        .expect("connect smoke client");
    let q0 = env.queries.point(0);
    let plain = client.knn(q0, 10).expect("untraced knn over the wire");
    let traced = client
        .knn_with(
            q0,
            10,
            SearchOptions {
                trace: true,
                ..Default::default()
            },
        )
        .expect("traced knn over the wire");
    assert_eq!(
        plain.neighbors, traced.neighbors,
        "tracing changed an answer"
    );
    assert_eq!(plain.stats, traced.stats, "tracing changed query stats");
    let prom = client
        .metrics(dblsh_net::MetricsFormat::Prometheus)
        .expect("prometheus scrape");
    for needle in [
        "# TYPE dblsh_requests_total counter",
        "dblsh_requests_total{op=\"knn\"}",
        "# TYPE dblsh_request_seconds summary",
        "dblsh_stage_seconds_sum{stage=\"tree_probe\"}",
        "dblsh_queue_depth",
        "dblsh_uptime_seconds",
    ] {
        assert!(prom.contains(needle), "scrape is missing {needle:?}");
    }
    let json_expo = client
        .metrics(dblsh_net::MetricsFormat::Json)
        .expect("json scrape");
    assert!(
        json_expo.contains("\"kind\":\"histogram\""),
        "JSON exposition lost its histograms"
    );
    let wire_stats = client.stats().expect("stats over the wire");
    drop(client);
    server.shutdown();

    let stats = Arc::try_unwrap(engine)
        .ok()
        .expect("server released its engine handle")
        .shutdown();
    assert_eq!(stats.searches as usize, nq * REPEATS + 2);
    assert_eq!(stats.knn_requests, stats.searches);
    assert_eq!(stats.rcnn_requests, 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.rejected, 0, "blocking submission never rejects");
    assert!(stats.uptime_secs > 0.0 && stats.started_at_unix > 0);
    println!(
        "engine ({SHARDS} workers): {:.0} QPS aggregate over {} requests, \
         p50 {:.1} us, p99 {:.1} us, {:.0} candidates/query, \
         {:.0} prefilter-pruned/query, queue depth {} (live), rejected {}",
        stats.searches as f64 / elapsed,
        stats.searches,
        stats.p50_latency_us,
        stats.p99_latency_us,
        stats.query.candidates as f64 / stats.searches as f64,
        stats.query.prefilter_pruned as f64 / stats.searches as f64,
        live.queue_depth,
        stats.rejected,
    );
    let serve_doc = dblsh_bench::json::obj(vec![
        ("bench", "serve".into()),
        ("shards", SHARDS.into()),
        ("workers", SHARDS.into()),
        ("requests", stats.searches.into()),
        ("knn_requests", stats.knn_requests.into()),
        ("rcnn_requests", stats.rcnn_requests.into()),
        ("qps", (stats.searches as f64 / elapsed).into()),
        ("mean_latency_us", stats.mean_latency_us.into()),
        ("p50_latency_us", stats.p50_latency_us.into()),
        ("p99_latency_us", stats.p99_latency_us.into()),
        ("errors", stats.errors.into()),
        ("rejected", stats.rejected.into()),
        ("uptime_secs", stats.uptime_secs.into()),
        ("wire_stats_searches_at_scrape", wire_stats.searches.into()),
        (
            "scrape",
            dblsh_bench::json::obj(vec![
                ("prometheus_bytes", prom.len().into()),
                ("json_bytes", json_expo.len().into()),
            ]),
        ),
    ]);
    dblsh_bench::json::write_json_file("BENCH_serve.json", &serve_doc)
        .expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json (serving + telemetry smoke artifact)");
    // Churn sanity: tombstones must be visible as dead bytes, and one
    // compact() must reclaim them all without losing a live answer.
    let mut churned = index;
    for id in (0..1000u32).step_by(2) {
        churned.remove(id).expect("smoke remove");
    }
    let dead = churned.memory_breakdown().dead_bytes;
    assert!(dead > 0, "500 tombstoned rows report no dead bytes");
    let before = churned
        .search_canonical(env.queries.point(0), 10, &opts)
        .expect("pre-compact");
    let cstats = churned.compact();
    assert_eq!(cstats.dropped_rows, 500);
    assert_eq!(churned.memory_breakdown().dead_bytes, 0);
    let after = churned
        .search_canonical(env.queries.point(0), 10, &opts)
        .expect("post-compact");
    assert_eq!(
        before.neighbors, after.neighbors,
        "compaction changed canonical answers"
    );
    println!(
        "churn: 500 removes pinned {:.3} MB dead, compact() reclaimed all of it",
        mb(dead)
    );
    println!("smoke OK");
}
