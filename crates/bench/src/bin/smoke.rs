//! Bench-harness smoke run: build DB-LSH over a tiny synthetic dataset,
//! answer queries, and print the per-component index-size breakdown
//! (shared projection store, flat tree arenas, locality-relabel state)
//! plus the query-latency split (`knn_10` mean and the per-query
//! verification time inside it) and the serving layer's sharded
//! vs unsharded `knn_10` numbers with an engine QPS figure. Fails
//! loudly — CI runs this so layout, recall, hot-path or serving
//! regressions surface before any full experiment does.
//!
//! Run: `cargo run -p dblsh-bench --release --bin smoke`

use std::sync::Arc;

use dblsh_bench::{evaluate, Env};
use dblsh_core::{DbLsh, DbLshParams, SearchOptions};
use dblsh_data::synthetic::MixtureConfig;
use dblsh_data::{AnnIndex, QueryStats};
use dblsh_serve::{Engine, EngineConfig, ShardPolicy, ShardedDbLsh};
use std::time::Instant;

fn main() {
    let mut env = Env::from_config(
        "smoke".into(),
        &MixtureConfig {
            n: 5_000,
            dim: 24,
            clusters: 25,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed: 7,
        },
    );

    let params = DbLshParams::paper_defaults(env.data.len()).with_r_min(env.r_hint.max(1e-9));
    let start = Instant::now();
    let index = DbLsh::build(Arc::clone(&env.data), &params).expect("smoke build");
    let build_s = start.elapsed().as_secs_f64();

    // Per-component index size: the one shared ProjStore vs the L
    // id-only tree arenas.
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    let breakdown = index.memory_breakdown();
    println!("== index size breakdown ==");
    println!(
        "ProjStore (n x L*K coords, f32): {:>9.3} MB",
        mb(breakdown.proj_store_bytes)
    );
    println!(
        "{} tree arenas (ids + bounds):    {:>9.3} MB",
        index.params().l,
        mb(breakdown.tree_bytes)
    );
    println!(
        "relabel state (maps + rows):     {:>9.3} MB",
        mb(breakdown.relabel_bytes)
    );
    println!(
        "dead (tombstoned) share:         {:>9.3} MB",
        mb(breakdown.dead_bytes)
    );
    assert_eq!(
        breakdown.dead_bytes, 0,
        "fresh build must have no dead rows"
    );
    for (i, s) in index.tree_stats().iter().enumerate() {
        println!(
            "  tree {i}: {} nodes, {} leaf entries, {} inner entries, {:.3} MB",
            s.nodes,
            s.leaf_entries,
            s.inner_entries,
            mb(s.structure_bytes)
        );
    }
    println!(
        "total:                           {:>9.3} MB",
        mb(breakdown.total())
    );
    assert_eq!(breakdown.total(), index.index_size_bytes());

    let row = evaluate(&index, &mut env, 10, build_s);
    println!(
        "\nsmoke eval: recall {:.3}, ratio {:.4}, {:.3} ms/query, {:.0} candidates",
        row.recall, row.ratio, row.query_ms, row.candidates
    );

    // Query-latency split: mean knn_10 wall time and, within it, the
    // per-query verification time (candidate-block sort + fused distance
    // kernel), measured through the opt-in timing counter.
    let timed = SearchOptions {
        time_verification: true,
        ..Default::default()
    };
    let nq = env.queries.len();
    let qstart = Instant::now();
    let mut timed_total = QueryStats::default();
    for qi in 0..nq {
        let res = index
            .search_with(env.queries.point(qi), 10, &timed)
            .expect("timed smoke query");
        timed_total.merge(&res.stats);
    }
    let total_us = qstart.elapsed().as_secs_f64() * 1e6;
    println!(
        "knn_10: {:.2} us/query, verification {:.2} us/query ({} candidates/query)",
        total_us / nq as f64,
        timed_total.verify_nanos as f64 / 1e3 / nq as f64,
        timed_total.candidates / nq.max(1),
    );
    assert!(
        timed_total.verify_nanos > 0,
        "verification timing not collected"
    );

    assert!(row.recall > 0.5, "smoke recall collapsed: {}", row.recall);
    assert!(row.ratio >= 1.0 - 1e-6, "ratio below 1: {}", row.ratio);

    // Serving layer: sharded vs unsharded knn_10 and engine throughput.
    // Both numbers use the canonical round-exhaustive query mode, so the
    // sharded answers are byte-identical to the unsharded ones — checked
    // here on every query before anything is timed.
    const SHARDS: usize = 4;
    let sharded =
        ShardedDbLsh::build_with_params(&env.data, &params, SHARDS, ShardPolicy::RoundRobin)
            .expect("sharded smoke build");
    let opts = SearchOptions::default();
    for qi in 0..nq {
        let q = env.queries.point(qi);
        let s = sharded.k_ann(q, 10).expect("sharded smoke query");
        let u = index
            .search_canonical(q, 10, &opts)
            .expect("canonical smoke query");
        assert_eq!(s.ids(), u.ids(), "sharded answers diverge at query {qi}");
        assert_eq!(s.stats, u.stats, "sharded work counters diverge");
    }
    let time_per_query = |f: &mut dyn FnMut(usize)| {
        let start = Instant::now();
        for qi in 0..nq {
            f(qi);
        }
        start.elapsed().as_secs_f64() * 1e6 / nq as f64
    };
    let unsharded_us = time_per_query(&mut |qi| {
        index
            .search_canonical(env.queries.point(qi), 10, &opts)
            .expect("canonical smoke query");
    });
    let sharded_us = time_per_query(&mut |qi| {
        sharded
            .k_ann(env.queries.point(qi), 10)
            .expect("sharded smoke query");
    });
    println!(
        "\n== serving smoke ({SHARDS} shards) ==\n\
         knn_10 canonical: unsharded {unsharded_us:.2} us/query, sharded {sharded_us:.2} us/query"
    );

    const REPEATS: usize = 5;
    let engine = Engine::start(
        Arc::new(sharded),
        EngineConfig {
            workers: SHARDS,
            queue_capacity: 256,
        },
    );
    let estart = Instant::now();
    let tickets: Vec<_> = (0..nq * REPEATS)
        .map(|j| engine.search(env.queries.point(j % nq), 10))
        .collect();
    for t in tickets {
        t.wait().expect("engine smoke query");
    }
    // Snapshot admission-control counters while the engine is live (the
    // queue depth is an instantaneous gauge; post-shutdown it is 0 by
    // construction).
    let live = engine.stats();
    let elapsed = estart.elapsed().as_secs_f64();
    let stats = engine.shutdown();
    assert_eq!(stats.searches as usize, nq * REPEATS);
    assert_eq!(stats.errors, 0);
    assert_eq!(stats.rejected, 0, "blocking submission never rejects");
    println!(
        "engine ({SHARDS} workers): {:.0} QPS aggregate over {} requests, \
         p50 {:.1} us, p99 {:.1} us, {:.0} candidates/query, \
         queue depth {} (live), rejected {}",
        stats.searches as f64 / elapsed,
        stats.searches,
        stats.p50_latency_us,
        stats.p99_latency_us,
        stats.query.candidates as f64 / stats.searches as f64,
        live.queue_depth,
        stats.rejected,
    );
    // Churn sanity: tombstones must be visible as dead bytes, and one
    // compact() must reclaim them all without losing a live answer.
    let mut churned = index;
    for id in (0..1000u32).step_by(2) {
        churned.remove(id).expect("smoke remove");
    }
    let dead = churned.memory_breakdown().dead_bytes;
    assert!(dead > 0, "500 tombstoned rows report no dead bytes");
    let before = churned
        .search_canonical(env.queries.point(0), 10, &opts)
        .expect("pre-compact");
    let cstats = churned.compact();
    assert_eq!(cstats.dropped_rows, 500);
    assert_eq!(churned.memory_breakdown().dead_bytes, 0);
    let after = churned
        .search_canonical(env.queries.point(0), 10, &opts)
        .expect("post-compact");
    assert_eq!(
        before.neighbors, after.neighbors,
        "compaction changed canonical answers"
    );
    println!(
        "churn: 500 removes pinned {:.3} MB dead, compact() reclaimed all of it",
        mb(dead)
    );
    println!("smoke OK");
}
