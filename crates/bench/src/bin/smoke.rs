//! Bench-harness smoke run: build DB-LSH over a tiny synthetic dataset,
//! answer queries, and print the per-component index-size breakdown
//! (shared projection store, flat tree arenas, locality-relabel state)
//! plus the query-latency split (`knn_10` mean and the per-query
//! verification time inside it). Fails loudly — CI runs this so layout,
//! recall or hot-path regressions surface before any full experiment
//! does.
//!
//! Run: `cargo run -p dblsh-bench --release --bin smoke`

use std::sync::Arc;

use dblsh_bench::{evaluate, Env};
use dblsh_core::{DbLsh, DbLshParams, SearchOptions};
use dblsh_data::synthetic::MixtureConfig;
use dblsh_data::AnnIndex;
use std::time::Instant;

fn main() {
    let mut env = Env::from_config(
        "smoke".into(),
        &MixtureConfig {
            n: 5_000,
            dim: 24,
            clusters: 25,
            cluster_std: 1.0,
            spread: 60.0,
            noise_frac: 0.02,
            seed: 7,
        },
    );

    let params = DbLshParams::paper_defaults(env.data.len()).with_r_min(env.r_hint.max(1e-9));
    let start = Instant::now();
    let index = DbLsh::build(Arc::clone(&env.data), &params).expect("smoke build");
    let build_s = start.elapsed().as_secs_f64();

    // Per-component index size: the one shared ProjStore vs the L
    // id-only tree arenas.
    let mb = |b: usize| b as f64 / (1024.0 * 1024.0);
    let breakdown = index.memory_breakdown();
    println!("== index size breakdown ==");
    println!(
        "ProjStore (n x L*K coords, f32): {:>9.3} MB",
        mb(breakdown.proj_store_bytes)
    );
    println!(
        "{} tree arenas (ids + bounds):    {:>9.3} MB",
        index.params().l,
        mb(breakdown.tree_bytes)
    );
    println!(
        "relabel state (maps + rows):     {:>9.3} MB",
        mb(breakdown.relabel_bytes)
    );
    for (i, s) in index.tree_stats().iter().enumerate() {
        println!(
            "  tree {i}: {} nodes, {} leaf entries, {} inner entries, {:.3} MB",
            s.nodes,
            s.leaf_entries,
            s.inner_entries,
            mb(s.structure_bytes)
        );
    }
    println!(
        "total:                           {:>9.3} MB",
        mb(breakdown.total())
    );
    assert_eq!(breakdown.total(), index.index_size_bytes());

    let row = evaluate(&index, &mut env, 10, build_s);
    println!(
        "\nsmoke eval: recall {:.3}, ratio {:.4}, {:.3} ms/query, {:.0} candidates",
        row.recall, row.ratio, row.query_ms, row.candidates
    );

    // Query-latency split: mean knn_10 wall time and, within it, the
    // per-query verification time (candidate-block sort + fused distance
    // kernel), measured through the opt-in timing counter.
    let timed = SearchOptions {
        time_verification: true,
        ..Default::default()
    };
    let nq = env.queries.len();
    let qstart = Instant::now();
    let mut verify_nanos = 0u64;
    let mut timed_candidates = 0usize;
    for qi in 0..nq {
        let res = index
            .search_with(env.queries.point(qi), 10, &timed)
            .expect("timed smoke query");
        verify_nanos += res.stats.verify_nanos;
        timed_candidates += res.stats.candidates;
    }
    let total_us = qstart.elapsed().as_secs_f64() * 1e6;
    println!(
        "knn_10: {:.2} us/query, verification {:.2} us/query ({} candidates/query)",
        total_us / nq as f64,
        verify_nanos as f64 / 1e3 / nq as f64,
        timed_candidates / nq.max(1),
    );
    assert!(verify_nanos > 0, "verification timing not collected");

    assert!(row.recall > 0.5, "smoke recall collapsed: {}", row.recall);
    assert!(row.ratio >= 1.0 - 1e-6, "ratio below 1: {}", row.ratio);
    println!("smoke OK");
}
