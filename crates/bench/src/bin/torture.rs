//! Fault-injection torture harness: crash, corrupt, and panic the
//! serving stack on a seeded schedule, then prove recovery is exact.
//!
//! Four phases, each asserting the recovered system answers
//! **byte-identically** (neighbors *and* [`dblsh_data::QueryStats`]) to
//! a never-faulted reference:
//!
//! * **A — fleet WAL crash sweep**: run a scripted workload against a
//!   WAL-enabled [`ShardedDbLsh`], then simulate a process kill at
//!   *every* record boundary (and at every byte inside a sample of
//!   records — torn tails) by truncating copies of the log directory
//!   and reloading. Each recovered fleet must equal the reference
//!   holding exactly the acknowledged prefix.
//! * **B — WAL I/O faults**: drive a [`ReplicatedShard`] through a
//!   seeded [`WriteFaultPlan`] — `Interrupted` and short writes must be
//!   absorbed invisibly; a hard device failure must surface as a typed
//!   I/O error without burning an id, and the group must reopen clean.
//! * **C — replica torture**: kill and panic replicas mid-write on a
//!   seeded [`FaultPlan`] while traffic flows; quarantined replicas
//!   rehydrate in the background and the group converges back to full
//!   strength with answers equal to the reference.
//! * **D — worker panics**: panic [`Engine`] workers mid-request via
//!   the chaos hook; panicked tickets resolve to the typed `Shutdown`,
//!   the pool survives, and later answers are unchanged.
//!
//! Everything derives from `--seed` (default 42), so a failure replays
//! exactly. `--quick` shrinks the sweep for a ~CI-smoke-sized run.
//!
//! Run: `cargo run -p dblsh-bench --release --bin torture -- --quick`

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use dblsh_core::{DbLsh, DbLshBuilder, SearchOptions};
use dblsh_data::synthetic::{gaussian_mixture, MixtureConfig};
use dblsh_data::wal::WriteFaultPlan;
use dblsh_data::{Dataset, DbLshError};
use dblsh_serve::{
    Engine, EngineConfig, FaultPlan, ReplicaState, ReplicatedShard, ShardPolicy, ShardedDbLsh,
};
use rand::prelude::*;
use rand::rngs::StdRng;

#[derive(Debug, Clone)]
struct Args {
    seed: u64,
    quick: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        quick: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--seed takes an integer");
            }
            "--quick" => args.quick = true,
            "--help" | "-h" => {
                eprintln!("usage: torture [--seed N] [--quick]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn builder() -> DbLshBuilder {
    DbLshBuilder::new().k(4).l(2).t(8).r_min(0.5)
}

fn mixture(n: usize, seed: u64) -> Dataset {
    gaussian_mixture(&MixtureConfig {
        n,
        dim: 8,
        clusters: 4,
        seed,
        ..Default::default()
    })
}

fn workdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dblsh-torture-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create work dir");
    dir
}

fn copy_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("create copy dir");
    for entry in std::fs::read_dir(src).expect("read dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            std::fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy file");
        }
    }
}

fn truncate_file(path: &Path, len: u64) {
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .expect("open for truncate");
    f.set_len(len).expect("truncate");
}

/// One scripted mutation; the same script replays on the reference.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<f32>),
    Remove(u32),
}

fn script_ops(data: &Dataset, count: usize, seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7041);
    (0..count)
        .map(|_| {
            if rng.gen_range(0.0..1.0) < 0.3 {
                // May already be dead — `remove` then reports `false`,
                // which is itself part of the determinism contract.
                Op::Remove(rng.gen_range(0..data.len()) as u32)
            } else {
                Op::Insert(data.point(rng.gen_range(0..data.len())).to_vec())
            }
        })
        .collect()
}

fn apply(fleet: &ShardedDbLsh, op: &Op) {
    match op {
        Op::Insert(p) => {
            fleet.insert(p).expect("scripted insert");
        }
        Op::Remove(id) => {
            fleet.remove(*id).expect("scripted remove");
        }
    }
}

/// Byte-identical equality of two fleets: membership, then canonical
/// answers with stats on a spread of queries.
fn assert_fleets_equal(got: &ShardedDbLsh, want: &ShardedDbLsh, data: &Dataset, label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: len");
    let bound = (data.len() + 64) as u32;
    for id in 0..bound {
        assert_eq!(got.contains(id), want.contains(id), "{label}: id {id}");
    }
    let opts = SearchOptions::default();
    for qi in (0..data.len()).step_by(1.max(data.len() / 5)) {
        let q = data.point(qi);
        let a = got.search_with(q, 7, &opts).expect("recovered query");
        let b = want.search_with(q, 7, &opts).expect("reference query");
        assert_eq!(a.neighbors, b.neighbors, "{label}: query {qi}");
        assert_eq!(a.stats, b.stats, "{label}: query {qi} stats");
    }
}

/// Phase A: kill the process at every WAL record boundary (and inside
/// a sample of records) and prove recovery lands on the exact
/// acknowledged prefix. Returns the total
/// [`ShardedDbLsh::wal_truncations_recovered`] across the torn-tail
/// loads — the fault counter this phase must drive non-zero.
fn phase_fleet_crash_sweep(args: &Args) -> u64 {
    let start = Instant::now();
    let ops_count = if args.quick { 16 } else { 48 };
    let byte_sweeps = if args.quick { 2 } else { 4 };
    let data = mixture(320, args.seed);

    let live = workdir("fleet-live");
    let fleet = ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin)
        .expect("build fleet")
        .enable_wal(&live)
        .expect("enable wal");
    let base = workdir("fleet-base");
    copy_dir(&live, &base);

    let ops = script_ops(&data, ops_count, args.seed);
    let wal_paths: Vec<PathBuf> = (0..fleet.shard_count())
        .map(|s| live.join(format!("wal-{s}.dblshwal")))
        .collect();
    let wal_sizes = |dir: &Path| -> Vec<u64> {
        wal_paths
            .iter()
            .map(|p| {
                std::fs::metadata(dir.join(p.file_name().expect("wal name")))
                    .expect("wal metadata")
                    .len()
            })
            .collect()
    };
    let mut sizes: Vec<Vec<u64>> = vec![wal_sizes(&live)];
    for op in &ops {
        apply(&fleet, op);
        sizes.push(wal_sizes(&live));
    }

    // The reference replays the script against a copy of the baseline;
    // ids match because routing is deterministic from identical state.
    let ref_dir = workdir("fleet-ref");
    copy_dir(&base, &ref_dir);
    let reference = ShardedDbLsh::load_dir(&ref_dir).expect("load reference");

    // Every `sweep_every`-th op additionally gets a torn-tail sweep:
    // a crash at every byte inside the record it appended.
    let sweep_every = 1.max(ops_count / byte_sweeps);
    let crash = workdir("fleet-crash");
    let mut boundaries = 0usize;
    let mut torn = 0usize;
    let mut truncations = 0u64;
    for t in 0..=ops.len() {
        copy_dir(&live, &crash);
        for (p, len) in wal_paths.iter().zip(&sizes[t]) {
            truncate_file(&crash.join(p.file_name().expect("wal name")), *len);
        }
        let recovered = ShardedDbLsh::load_dir(&crash).expect("load crashed fleet");
        assert_fleets_equal(&recovered, &reference, &data, &format!("boundary {t}"));
        assert_eq!(
            recovered.wal_truncations_recovered(),
            0,
            "a record-boundary crash has no torn tail to truncate (boundary {t})"
        );
        boundaries += 1;

        if t < ops.len() && t % sweep_every == 0 {
            // Exactly one shard's log grew for op t; tear it at every
            // intermediate byte — all of them must recover to state t.
            let s = (0..wal_paths.len())
                .find(|&s| sizes[t + 1][s] > sizes[t][s])
                .expect("one wal grew");
            for extra in 1..(sizes[t + 1][s] - sizes[t][s]) {
                copy_dir(&live, &crash);
                for (i, p) in wal_paths.iter().enumerate() {
                    let len = sizes[t][i] + if i == s { extra } else { 0 };
                    truncate_file(&crash.join(p.file_name().expect("wal name")), len);
                }
                let recovered = ShardedDbLsh::load_dir(&crash).expect("load torn fleet");
                assert_fleets_equal(
                    &recovered,
                    &reference,
                    &data,
                    &format!("torn tail op {t} +{extra}B"),
                );
                let recs = recovered.wal_truncations_recovered();
                assert!(
                    recs >= 1,
                    "torn tail op {t} +{extra}B must report a recovered WAL truncation"
                );
                truncations += recs;
                torn += 1;
            }
        }
        if t < ops.len() {
            apply(&reference, &ops[t]);
        }
    }

    for dir in [&live, &base, &ref_dir, &crash] {
        let _ = std::fs::remove_dir_all(dir);
    }
    println!(
        "phase A  fleet crash sweep     {boundaries} boundaries + {torn} torn tails exact, \
         {truncations} WAL truncations recovered  ({:.1?})",
        start.elapsed()
    );
    truncations
}

/// Lean parity check of a replica group against a plain reference.
fn assert_group_matches(group: &ReplicatedShard, reference: &DbLsh, data: &Dataset, label: &str) {
    assert_eq!(group.len().expect("group len"), reference.len(), "{label}");
    assert_eq!(
        group.id_bound() as usize,
        reference.id_bound(),
        "{label}: id bound"
    );
    for id in 0..reference.id_bound() as u32 {
        assert_eq!(
            group.contains(id).expect("group contains"),
            reference.contains(id),
            "{label}: id {id}"
        );
    }
    let opts = SearchOptions::default();
    for qi in (0..data.len()).step_by(1.max(data.len() / 7)) {
        let q = data.point(qi);
        let got = group.search_with(q, 9, &opts).expect("group query");
        let want = reference.search_canonical(q, 9, &opts).expect("ref query");
        assert_eq!(got.neighbors, want.neighbors, "{label}: query {qi}");
        assert_eq!(got.stats, want.stats, "{label}: query {qi} stats");
    }
}

/// Phase B: I/O faults on the group WAL itself.
fn phase_wal_io_faults(args: &Args) {
    let start = Instant::now();
    let inserts = if args.quick { 30 } else { 80 };
    let data = mixture(140, args.seed ^ 0xB);
    let dir = workdir("replica-io");
    let group =
        ReplicatedShard::create(builder().build(data.clone()).expect("build index"), 2, &dir)
            .expect("create group");
    let mut reference = builder().build(data.clone()).expect("build reference");

    // Interrupted syscalls and short writes are the OS being an OS;
    // every insert must still be acknowledged and applied.
    group.set_wal_faults(Some(
        WriteFaultPlan::new(args.seed ^ 0xB1)
            .with_interrupts(0.25)
            .with_short_writes(0.25),
    ));
    for i in 0..inserts {
        let p = data.point(i % data.len()).to_vec();
        let got = group.insert(&p).expect("insert through soft faults");
        let want = reference.insert(&p).expect("reference insert");
        assert_eq!(got, want, "id diverged under soft faults");
    }

    // A dead device: the append fails with a typed I/O error, no id is
    // burnt, and the very next healthy insert gets the same id.
    group.set_wal_faults(Some(
        WriteFaultPlan::new(args.seed ^ 0xB2).with_hard_fail_after(0),
    ));
    let before = group.id_bound();
    let p = data.point(0).to_vec();
    match group.insert(&p) {
        Err(DbLshError::Io { .. }) => {}
        other => panic!("hard WAL failure must be a typed Io error, got {other:?}"),
    }
    assert_eq!(
        group.id_bound(),
        before,
        "failed append must not burn an id"
    );
    group.set_wal_faults(None);
    let got = group.insert(&p).expect("insert after faults cleared");
    let want = reference.insert(&p).expect("reference insert");
    assert_eq!(got, want, "id after recovery");
    assert_eq!(got, before, "the failed id is reused");

    assert_group_matches(&group, &reference, &data, "after io faults");
    drop(group);
    let reopened = ReplicatedShard::open(&dir, 2).expect("reopen group");
    assert_group_matches(&reopened, &reference, &data, "after reopen");
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "phase B  WAL I/O faults        {inserts} soft-faulted inserts + hard-fail recovery exact  ({:.1?})",
        start.elapsed()
    );
}

/// Phase C: kill/panic replicas mid-write on a seeded plan while
/// traffic flows; the group must converge back to parity. Returns the
/// quarantine count — the fault counter this phase must drive non-zero.
fn phase_replica_torture(args: &Args) -> u64 {
    let start = Instant::now();
    let steps = if args.quick { 120 } else { 400 };
    let data = mixture(150, args.seed ^ 0xC);
    let dir = workdir("replica-torture");
    let group =
        ReplicatedShard::create(builder().build(data.clone()).expect("build index"), 3, &dir)
            .expect("create group");
    let mut reference = builder().build(data.clone()).expect("build reference");

    group.set_fault_hook(Some(
        FaultPlan::new(args.seed ^ 0xC1)
            .with_kills(0.04)
            .with_panics(0.04)
            .hook(),
    ));
    let opts = SearchOptions::default();
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0xC2);
    let mut busy_retries = 0u64;
    for _ in 0..steps {
        match rng.gen_range(0..10) {
            0..=4 => {
                let p = data.point(rng.gen_range(0..data.len())).to_vec();
                let got = group.insert(&p).expect("torture insert");
                let want = reference.insert(&p).expect("reference insert");
                assert_eq!(got, want, "insert id diverged under faults");
            }
            5..=6 => {
                let id = rng.gen_range(0..data.len()) as u32;
                // All replicas momentarily dead reads as the retryable
                // `Busy`; nothing was logged, so a retry is safe.
                loop {
                    match group.remove(id) {
                        Ok(got) => {
                            let want = reference.remove(id).expect("reference remove");
                            assert_eq!(got, want, "remove outcome diverged");
                            break;
                        }
                        Err(DbLshError::Busy) => {
                            busy_retries += 1;
                            group.wait_idle();
                        }
                        Err(e) => panic!("unexpected remove error: {e:?}"),
                    }
                }
            }
            _ => {
                let q = data.point(rng.gen_range(0..data.len()));
                loop {
                    match group.search_with(q, 6, &opts) {
                        Ok(got) => {
                            let want = reference.search_canonical(q, 6, &opts).expect("ref query");
                            assert_eq!(got.neighbors, want.neighbors, "mid-fault answer");
                            assert_eq!(got.stats, want.stats, "mid-fault stats");
                            break;
                        }
                        Err(DbLshError::Busy) => {
                            busy_retries += 1;
                            group.wait_idle();
                        }
                        Err(e) => panic!("unexpected search error: {e:?}"),
                    }
                }
            }
        }
    }

    // Stop injecting, let in-flight rehydrations settle, and retry any
    // that failed while the hook was still wounding their peers.
    group.set_fault_hook(None);
    for _ in 0..8 {
        group.wait_idle();
        let states = group.replica_states();
        if states.iter().all(|s| *s == ReplicaState::Live) {
            break;
        }
        for (i, s) in states.iter().enumerate() {
            if *s == ReplicaState::Quarantined {
                group.rehydrate(i);
            }
        }
    }
    let stats = group.stats();
    assert_eq!(
        stats.live, stats.replicas,
        "group must heal to full strength"
    );
    assert_group_matches(&group, &reference, &data, "post-torture");
    assert!(
        stats.quarantines > 0,
        "the plan must actually wound something at these rates"
    );
    drop(group);
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "phase C  replica torture       {steps} ops, {} quarantines, {} readmissions, {busy_retries} busy retries, parity exact  ({:.1?})",
        stats.quarantines,
        stats.readmissions,
        start.elapsed()
    );
    stats.quarantines
}

/// Phase D: panic engine workers mid-request; the pool survives and
/// later answers are unchanged. Returns the contained-panic count — the
/// fault counter this phase must drive non-zero.
fn phase_worker_panics(args: &Args) -> u64 {
    let start = Instant::now();
    let panics = if args.quick { 4 } else { 12 };
    let data = mixture(400, args.seed ^ 0xD);
    let index = Arc::new(
        ShardedDbLsh::build(&data, &builder(), 2, ShardPolicy::RoundRobin).expect("build fleet"),
    );
    let engine = Engine::start(
        Arc::clone(&index),
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
        },
    );

    let opts = SearchOptions::default();
    let mut searches = 0u64;
    for round in 0..panics {
        match engine.inject_worker_panic().wait() {
            Err(DbLshError::Shutdown) => {}
            other => panic!("panicked ticket must resolve to Shutdown, got {other:?}"),
        }
        for qi in (round..data.len()).step_by(1.max(data.len() / 6)) {
            let q = data.point(qi);
            let got = engine
                .search_with(q, 8, opts.clone())
                .wait()
                .expect("search");
            let want = index.search_with(q, 8, &opts).expect("direct search");
            assert_eq!(got.neighbors, want.neighbors, "post-panic answer");
            assert_eq!(got.stats, want.stats, "post-panic stats");
            searches += 1;
        }
    }
    let stats = engine.shutdown();
    assert_eq!(stats.errors, panics as u64, "each panic counts once");
    assert_eq!(stats.searches, searches, "every search still served");
    println!(
        "phase D  worker panics         {panics} panics contained, {searches} searches exact  ({:.1?})",
        start.elapsed()
    );
    stats.errors
}

/// Injected panics are caught at isolation boundaries by design; keep
/// their backtraces out of the report while real panics still print.
fn silence_injected_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("injected"))
            || info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|m| m.starts_with("injected"));
        if !injected {
            default(info);
        }
    }));
}

fn main() {
    let args = parse_args();
    silence_injected_panics();
    let start = Instant::now();
    println!(
        "torture: seed {}, {} mode",
        args.seed,
        if args.quick { "quick" } else { "full" }
    );
    let truncations = phase_fleet_crash_sweep(&args);
    phase_wal_io_faults(&args);
    let quarantines = phase_replica_torture(&args);
    let panics = phase_worker_panics(&args);
    // Every injected fault class must leave a visible footprint in its
    // counter — a zero here means a fault path went dark, not that the
    // system got lucky.
    println!(
        "fault-path counters: {truncations} WAL truncations recovered, \
         {quarantines} replica quarantines, {panics} worker panics contained"
    );
    assert!(truncations > 0, "torn-tail sweep recovered no truncations");
    assert!(quarantines > 0, "replica torture quarantined nothing");
    assert!(panics > 0, "worker-panic phase contained nothing");
    println!("torture: all phases exact in {:.1?}", start.elapsed());
}
