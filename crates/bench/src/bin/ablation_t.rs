//! Ablation (Remark 2): sweep the candidate-budget constant `t`. The
//! budget `2tL + k` trades verification work for accuracy; the paper's
//! point is that moderate `t` already recovers the accuracy that the
//! classic theory buys with `n^rho` separate indexes.
//!
//! Run: `cargo run -p dblsh-bench --release --bin ablation_t`

use std::sync::Arc;

use dblsh_bench::{evaluate, Env};
use dblsh_core::{DbLsh, DbLshParams};
use dblsh_data::registry::PaperDataset;

fn main() {
    let k = 50;
    let c = 1.5;
    println!("== Ablation: candidate budget t (budget = 2tL + k) ==");
    let mut env = Env::paper(PaperDataset::Gist);
    println!(
        "dataset {} (n = {}, d = {})\n",
        env.label,
        env.data.len(),
        env.data.dim()
    );
    println!(
        "{:>6} {:>8} {:>12} {:>9} {:>9} {:>11}",
        "t", "budget", "Query(ms)", "Recall", "Ratio", "Candidates"
    );
    for t in [2usize, 8, 16, 32, 64, 128, 256, 512] {
        let params = DbLshParams::paper_defaults(env.data.len())
            .with_c(c)
            .with_t(t)
            .with_r_min(env.r_hint);
        let start = std::time::Instant::now();
        let index = DbLsh::build(Arc::clone(&env.data), &params).expect("DB-LSH build");
        let build_s = start.elapsed().as_secs_f64();
        let row = evaluate(&index, &mut env, k, build_s);
        println!(
            "{:>6} {:>8} {:>12.3} {:>9.4} {:>9.4} {:>11.0}",
            t,
            params.kann_budget(k),
            row.query_ms,
            row.recall,
            row.ratio,
            row.candidates
        );
    }
    println!(
        "\nShape to verify: recall rises with t and saturates; query time\n\
         grows roughly linearly in verified candidates."
    );
}
