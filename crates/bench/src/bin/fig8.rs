//! Figure 8: effect of k — recall and overall ratio for
//! k in {1, 10, 20, ..., 100} on the Gist-like and TinyImages-like
//! datasets (query time omitted, as in the paper: "the curve does not
//! change much with k").
//!
//! Run: `cargo run -p dblsh-bench --release --bin fig8`

use dblsh_bench::{evaluate, Algo, Env};
use dblsh_data::registry::PaperDataset;

fn main() {
    let c = 1.5;
    let ks = [1usize, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
    let algos = [
        Algo::DbLsh,
        Algo::FbLsh,
        Algo::LccsLsh,
        Algo::PmLsh,
        Algo::R2Lsh,
        Algo::Vhp,
    ];
    println!("== Figure 8: varying k (c = {c}) ==");
    for dataset in [PaperDataset::Gist, PaperDataset::TinyImages80M] {
        let mut env = Env::paper(dataset);
        println!(
            "\n-- {} (n = {}, d = {}) --",
            env.label,
            env.data.len(),
            env.data.dim()
        );
        println!(
            "{:<12} {:>5} {:>9} {:>9}",
            "Algorithm", "k", "Recall", "Ratio"
        );
        for algo in algos {
            let (index, build_s) = algo.build(&env, c);
            for &k in &ks {
                let row = evaluate(index.as_ref(), &mut env, k, build_s);
                println!(
                    "{:<12} {:>5} {:>9.4} {:>9.4}",
                    row.algo, k, row.recall, row.ratio
                );
            }
        }
    }
    println!(
        "\nPaper shape to verify: accuracy degrades slightly as k grows;\n\
         DB-LSH keeps the highest recall / lowest ratio at every k."
    );
}
