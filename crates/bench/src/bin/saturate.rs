//! Saturation harness for the serving engine: drive an
//! [`dblsh_serve::Engine`] over a sharded index with a mixed
//! read/write workload at increasing worker counts and print a
//! throughput/latency table.
//!
//! Every sweep rebuilds the index from the same seed and replays the
//! *identical* request sequence (same queries, same insert points, same
//! remove targets, same interleaving), so worker count is the only
//! variable and the run is reproducible from `--seed`.
//!
//! Run: `cargo run -p dblsh-bench --release --bin saturate -- \
//!           --shards 4 --threads 4 --n 100k`
//!
//! Flags (all optional): `--n` points (default 100k; `k`/`m` suffixes),
//! `--dim` (32), `--shards` (4), `--threads` max workers (4; the sweep
//! doubles 1,2,4,... up to it), `--requests` per sweep (20k),
//! `--queries` distinct query points (1000), `--k` (10), `--write-frac`
//! fraction of requests that are writes (0.10), `--remove-frac` the
//! share of those writes that are removes rather than inserts (0.5; a
//! churn scenario like `--write-frac 0.3 --remove-frac 0.8` makes the
//! engine's per-shard compaction policy earn its keep), `--queue`
//! capacity (1024), `--seed` (42). With any removes in the mix the
//! engine runs under the default [`dblsh_serve::CompactionPolicy`], and
//! the sweep footer prints how many shard compactions fired. `--json
//! <path>` additionally writes the whole sweep (config + per-worker
//! QPS/p50/p99 rows) as a machine-readable `BENCH_*.json` artifact.

use std::sync::Arc;
use std::time::Instant;

use dblsh_core::DbLshBuilder;
use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};
use dblsh_serve::{Engine, EngineConfig, ShardPolicy, ShardedDbLsh};
use rand::prelude::*;
use rand::rngs::StdRng;

#[derive(Debug, Clone)]
struct Args {
    n: usize,
    dim: usize,
    shards: usize,
    threads: usize,
    requests: usize,
    queries: usize,
    k: usize,
    write_frac: f64,
    remove_frac: f64,
    queue: usize,
    seed: u64,
    json: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            n: 100_000,
            dim: 32,
            shards: 4,
            threads: 4,
            requests: 20_000,
            queries: 1000,
            k: 10,
            write_frac: 0.10,
            remove_frac: 0.5,
            queue: 1024,
            seed: 42,
            json: None,
        }
    }
}

/// Parse `"20k"` / `"1m"` / plain integers.
fn parse_count(s: &str) -> usize {
    let lower = s.trim().to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm']) {
        Some(d) if lower.ends_with('k') => (d, 1_000),
        Some(d) => (d, 1_000_000),
        None => (lower.as_str(), 1),
    };
    digits
        .parse::<usize>()
        .unwrap_or_else(|_| panic!("not a count: {s:?}"))
        * mult
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => args.n = parse_count(&value("--n")),
            "--dim" => args.dim = parse_count(&value("--dim")),
            "--shards" => args.shards = parse_count(&value("--shards")),
            "--threads" => args.threads = parse_count(&value("--threads")),
            "--requests" => args.requests = parse_count(&value("--requests")),
            "--queries" => args.queries = parse_count(&value("--queries")),
            "--k" => args.k = parse_count(&value("--k")),
            "--write-frac" => {
                args.write_frac = value("--write-frac").parse().expect("write fraction")
            }
            "--remove-frac" => {
                args.remove_frac = value("--remove-frac").parse().expect("remove fraction")
            }
            "--queue" => args.queue = parse_count(&value("--queue")),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--json" => args.json = Some(value("--json")),
            other => panic!("unknown flag {other:?} (see the module docs)"),
        }
    }
    args
}

/// One request of the pre-generated, seed-deterministic workload.
enum Op {
    Search(usize),
    Insert(usize),
    Remove(u32),
}

fn main() {
    let args = parse_args();
    println!("== saturate: {args:?} ==");

    // Seed-deterministic data, queries, and workload.
    let mut data = gaussian_mixture(&MixtureConfig {
        n: args.n + args.queries,
        dim: args.dim,
        clusters: 40,
        cluster_std: 1.0,
        spread: 60.0,
        noise_frac: 0.02,
        seed: args.seed,
    });
    let queries = split_queries(&mut data, args.queries, args.seed ^ 0xABCD);
    let builder = DbLshBuilder::new().auto_r_min().seed(args.seed);
    let params = builder
        .resolve_params_for(&data)
        .expect("saturate parameters");
    println!(
        "cloud: {} points x {}d, params K={} L={} r_min={:.4}, {} shards",
        data.len(),
        data.dim(),
        params.k,
        params.l,
        params.r_min,
        args.shards
    );

    assert!(
        (0.0..=1.0).contains(&args.remove_frac),
        "--remove-frac must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(args.seed ^ 0x5A7E);
    let writes = (args.requests as f64 * args.write_frac) as usize;
    let removes = ((writes as f64 * args.remove_frac) as usize).min(args.n);
    let inserts = writes - removes;
    // Insert points: fresh random vectors in the data's range. Remove
    // targets: distinct bulk ids, each removed exactly once per sweep.
    let insert_points: Vec<Vec<f32>> = (0..inserts)
        .map(|_| (0..args.dim).map(|_| rng.gen_range(-60.0..60.0)).collect())
        .collect();
    let mut remove_ids: Vec<u32> = (0..data.len() as u32).collect();
    for i in (1..remove_ids.len()).rev() {
        remove_ids.swap(i, rng.gen_range(0..i + 1));
    }
    remove_ids.truncate(removes);
    // Interleave deterministically: writes spread evenly through the run.
    let mut ops: Vec<Op> = Vec::with_capacity(args.requests);
    let (mut next_insert, mut next_remove) = (0usize, 0usize);
    let stride = if writes > 0 {
        args.requests.div_ceil(writes)
    } else {
        usize::MAX
    };
    for j in 0..args.requests {
        if stride != usize::MAX && j % stride == 0 && next_insert < inserts {
            ops.push(Op::Insert(next_insert));
            next_insert += 1;
        } else if stride != usize::MAX && j % stride == stride / 2 && next_remove < removes {
            ops.push(Op::Remove(remove_ids[next_remove]));
            next_remove += 1;
        } else {
            ops.push(Op::Search(j % queries.len()));
        }
    }

    // Worker sweep: 1, 2, 4, ... up to --threads.
    let mut sweep = Vec::new();
    let mut w = 1;
    while w < args.threads {
        sweep.push(w);
        w *= 2;
    }
    sweep.push(args.threads);
    sweep.dedup();

    println!(
        "\n{:>7} {:>10} {:>10} {:>9} {:>9} {:>9} {:>10} {:>7} {:>8}",
        "workers",
        "req/s",
        "srch QPS",
        "mean us",
        "p50 us",
        "p99 us",
        "cand/srch",
        "errors",
        "speedup"
    );
    let mut baseline_rps = 0.0f64;
    let mut qps_by_workers = Vec::new();
    let mut compactions_by_workers: Vec<(usize, u64)> = Vec::new();
    let mut json_rows: Vec<dblsh_bench::json::Json> = Vec::new();
    let (mut wal_truncations_total, mut panics_total) = (0u64, 0u64);
    for &workers in &sweep {
        // Fresh index per sweep: identical starting state, so worker
        // count is the only variable. Any churn in the mix runs under
        // the default per-shard compaction policy, so the sweep also
        // exercises write-lock compactions racing reads.
        let mut sharded =
            ShardedDbLsh::build_with_params(&data, &params, args.shards, ShardPolicy::RoundRobin)
                .expect("sharded build");
        if removes > 0 {
            sharded = sharded.with_compaction_policy(dblsh_serve::CompactionPolicy::default());
        }
        let index = Arc::new(sharded);
        let engine = Engine::start(
            Arc::clone(&index),
            EngineConfig {
                workers,
                queue_capacity: args.queue,
            },
        );
        let started = Instant::now();
        let mut search_tickets = Vec::with_capacity(args.requests);
        let mut insert_tickets = Vec::new();
        let mut remove_tickets = Vec::new();
        for op in &ops {
            match op {
                Op::Search(qi) => {
                    search_tickets.push(engine.search(queries.point(*qi), args.k));
                }
                Op::Insert(pi) => insert_tickets.push(engine.insert(&insert_points[*pi])),
                Op::Remove(id) => remove_tickets.push(engine.remove(*id)),
            }
        }
        let mut answered = 0usize;
        for t in search_tickets {
            answered += usize::from(t.wait().is_ok());
        }
        let writes_ok = insert_tickets.into_iter().all(|t| t.wait().is_ok())
            && remove_tickets.into_iter().all(|t| t.wait().is_ok());
        let elapsed = started.elapsed().as_secs_f64();
        // Scrape the registry while the engine is live: the exposition
        // must cover the whole workload mix, not just searches.
        let prom = engine.render_metrics_prometheus();
        for needle in [
            "dblsh_requests_total{op=\"knn\"}",
            "dblsh_requests_total{op=\"insert\"}",
            "dblsh_requests_total{op=\"remove\"}",
            "dblsh_request_seconds_count",
        ] {
            assert!(prom.contains(needle), "scrape is missing {needle:?}");
        }
        let stats = engine.shutdown();
        assert_eq!(stats.errors, 0, "workload produced errors");
        assert_eq!(answered as u64, stats.searches, "lost search answers");
        assert!(writes_ok, "writes must succeed");
        let rps = args.requests as f64 / elapsed;
        if workers == sweep[0] {
            baseline_rps = rps;
        }
        let search_qps = stats.searches as f64 / elapsed;
        qps_by_workers.push((workers, search_qps));
        compactions_by_workers.push((workers, index.compaction_count()));
        wal_truncations_total += index.wal_truncations_recovered();
        panics_total += stats.errors;
        println!(
            "{:>7} {:>10.0} {:>10.0} {:>9.1} {:>9.1} {:>9.1} {:>10.1} {:>7} {:>7.2}x",
            workers,
            rps,
            search_qps,
            stats.mean_latency_us,
            stats.p50_latency_us,
            stats.p99_latency_us,
            stats.query.candidates as f64 / stats.searches.max(1) as f64,
            stats.errors,
            rps / baseline_rps,
        );
        json_rows.push(dblsh_bench::json::obj(vec![
            ("workers", workers.into()),
            ("req_per_s", rps.into()),
            ("search_qps", search_qps.into()),
            ("mean_latency_us", stats.mean_latency_us.into()),
            ("p50_latency_us", stats.p50_latency_us.into()),
            ("p99_latency_us", stats.p99_latency_us.into()),
            (
                "candidates_per_search",
                (stats.query.candidates as f64 / stats.searches.max(1) as f64).into(),
            ),
            ("errors", stats.errors.into()),
            ("rejected", stats.rejected.into()),
            ("compactions", index.compaction_count().into()),
            (
                "wal_truncations_recovered",
                index.wal_truncations_recovered().into(),
            ),
            ("scrape_prometheus_bytes", prom.len().into()),
        ]));
    }
    if removes > 0 {
        println!(
            "\nchurn: {inserts} inserts / {removes} removes per sweep; shard compactions {:?}",
            compactions_by_workers
        );
    }
    // Fault-path counters: this harness injects no faults, so every one
    // of these must stay zero — a non-zero value here means a fault
    // path fired under a clean workload. The torture harness is the one
    // that drives them non-zero on purpose.
    println!(
        "fault path: {wal_truncations_total} WAL truncations recovered, \
         {panics_total} worker panics contained, 0 replica quarantines \
         (no faults injected)"
    );
    assert_eq!(
        (wal_truncations_total, panics_total),
        (0, 0),
        "fault-path counters moved without fault injection"
    );
    if let Some(path) = &args.json {
        let doc = dblsh_bench::json::obj(vec![
            ("bench", "saturate".into()),
            (
                "config",
                dblsh_bench::json::obj(vec![
                    ("n", args.n.into()),
                    ("dim", args.dim.into()),
                    ("shards", args.shards.into()),
                    ("threads", args.threads.into()),
                    ("requests", args.requests.into()),
                    ("queries", args.queries.into()),
                    ("k", args.k.into()),
                    ("write_frac", args.write_frac.into()),
                    ("remove_frac", args.remove_frac.into()),
                    ("queue", args.queue.into()),
                    ("seed", args.seed.into()),
                ]),
            ),
            ("sweep", dblsh_bench::json::Json::Arr(json_rows)),
        ]);
        dblsh_bench::json::write_json_file(path, &doc).expect("write --json artifact");
        println!("wrote {path}");
    }

    let increasing = qps_by_workers.windows(2).all(|w| w[1].1 > w[0].1);
    println!(
        "\nQPS {} with workers across the sweep {:?}",
        if increasing {
            "scaled strictly"
        } else {
            "did not scale strictly (core-starved machine?)"
        },
        sweep
    );
    println!("saturate OK");
}
