//! Figures 5–7: effect of the cardinality n — query time (Fig. 5), recall
//! (Fig. 6) and overall ratio (Fig. 7) at 0.2n .. 1.0n on the Gist-like
//! and TinyImages-like datasets.
//!
//! Run: `cargo run -p dblsh-bench --release --bin fig5_7`

use dblsh_bench::{evaluate, Algo, Env};
use dblsh_data::registry::PaperDataset;

fn main() {
    let k = 50;
    let c = 1.5;
    let algos = [
        Algo::DbLsh,
        Algo::FbLsh,
        Algo::LccsLsh,
        Algo::PmLsh,
        Algo::R2Lsh,
        Algo::Vhp,
    ];
    println!("== Figures 5-7: varying n (k = {k}, c = {c}) ==");
    for dataset in [PaperDataset::Gist, PaperDataset::TinyImages80M] {
        let base = Env::paper(dataset);
        let full = base.data.len() + base.queries.len();
        println!(
            "\n-- {} (full n = {full}, d = {}) --",
            base.label,
            base.data.dim()
        );
        println!(
            "{:<12} {:>6} {:>12} {:>9} {:>9}",
            "Algorithm", "frac", "Query(ms)", "Recall", "Ratio"
        );
        for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let mut env = base.shrink_to((full as f64 * frac) as usize);
            for algo in algos {
                let (index, build_s) = algo.build(&env, c);
                let row = evaluate(index.as_ref(), &mut env, k, build_s);
                println!(
                    "{:<12} {:>6.1} {:>12.3} {:>9.4} {:>9.4}",
                    row.algo, frac, row.query_ms, row.recall, row.ratio
                );
            }
        }
    }
    println!(
        "\nPaper shape to verify: every method's query time grows with n,\n\
         DB-LSH growing slowest (sub-linear); recall and ratio stay nearly\n\
         flat since the data distribution is unchanged."
    );
}
