//! Table IV: performance overview — query time, overall ratio, recall and
//! indexing time for every algorithm on every dataset, at the paper's
//! default parameters (k = 50, c = 1.5, w0 = 4c^2, L = 5, K = 10/12).
//!
//! Datasets are the synthetic clones of Table III at laptop scales (see
//! `dblsh-bench` docs for the `DBLSH_SCALE` / `DBLSH_DATASETS` /
//! `DBLSH_QUERIES` knobs). Run:
//!
//! ```text
//! cargo run -p dblsh-bench --release --bin table4
//! DBLSH_DATASETS=sift10m,tinyimages80m,sift100m cargo run -p dblsh-bench --release --bin table4
//! ```

use dblsh_bench::{evaluate, print_rows, selected_datasets, Algo, Env};

fn main() {
    let k = 50;
    let c = 1.5;
    println!("== Table IV: Performance Overview (k = {k}, c = {c}) ==");
    for dataset in selected_datasets() {
        let mut env = Env::paper(dataset);
        let label = format!(
            "{} (n = {}, d = {}, {} queries)",
            env.label,
            env.data.len(),
            env.data.dim(),
            env.queries.len()
        );
        let mut rows = Vec::new();
        for algo in Algo::TABLE4 {
            let (index, build_s) = algo.build(&env, c);
            rows.push(evaluate(index.as_ref(), &mut env, k, build_s));
        }
        print_rows(&label, &rows);
    }
    println!(
        "\nPaper shape to verify: DB-LSH has the smallest query time and\n\
         indexing time on every dataset while reaching the highest recall\n\
         and smallest ratio; FB-LSH trails DB-LSH on accuracy at similar\n\
         speed; recall on NUS is depressed for every method."
    );
}
