//! Figure 4: rho* vs rho as functions of the approximation ratio c, for
//! (a) w = 0.4 c^2 (gamma = 0.2, alpha < 1) and (b) w = 4 c^2 (gamma = 2).
//!
//! Run: `cargo run -p dblsh-bench --release --bin fig4`

use dblsh_math::{alpha_exponent, rho_dynamic, rho_static};

fn series(gamma: f64) {
    let alpha = alpha_exponent(gamma);
    println!(
        "\n-- Fig 4({}): w = {}c^2 (gamma = {gamma}, alpha = {alpha:.4}) --",
        if gamma < 1.0 { "a" } else { "b" },
        2.0 * gamma
    );
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>8}",
        "c", "rho*", "rho", "1/c^alpha", "1/c"
    );
    let mut c = 1.05;
    while c <= 4.0 + 1e-9 {
        let w = 2.0 * gamma * c * c;
        println!(
            "{:>6.2} {:>10.5} {:>10.5} {:>12.5} {:>8.5}",
            c,
            rho_dynamic(c, w),
            rho_static(c, w),
            c.powf(-alpha),
            1.0 / c
        );
        c += if c < 1.55 { 0.05 } else { 0.25 };
    }
}

fn main() {
    println!("== Figure 4: rho* vs rho ==");
    series(0.2); // w = 0.4 c^2
    series(2.0); // w = 4 c^2
    println!(
        "\nShape checks (asserted in the test suite): rho* < rho everywhere;\n\
         with w = 4c^2 rho stays near 1/c while rho* collapses toward 0."
    );
}
