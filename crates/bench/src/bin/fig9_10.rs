//! Figures 9–10: recall-time and ratio-time trade-off curves, produced by
//! varying the approximation ratio c per algorithm (and the probe budget
//! for LCCS-LSH, whose knob is #probes) on the Trevi-, Gist-, SIFT10M- and
//! TinyImages-like datasets.
//!
//! Run: `cargo run -p dblsh-bench --release --bin fig9_10`

use std::sync::Arc;

use dblsh_baselines::lccs::LccsParams;
use dblsh_baselines::LccsLsh;
use dblsh_bench::{evaluate, Algo, Env};
use dblsh_data::registry::PaperDataset;

fn main() {
    let k = 50;
    let cs = [1.1, 1.2, 1.3, 1.5, 1.8, 2.0, 2.5, 3.0];
    let probes = [64usize, 128, 256, 512, 1024, 2048];
    let c_algos = [
        Algo::DbLsh,
        Algo::FbLsh,
        Algo::PmLsh,
        Algo::R2Lsh,
        Algo::Vhp,
    ];
    println!("== Figures 9-10: recall-time / ratio-time curves (k = {k}) ==");
    for dataset in [
        PaperDataset::Trevi,
        PaperDataset::Gist,
        PaperDataset::Sift10M,
        PaperDataset::TinyImages80M,
    ] {
        let mut env = Env::paper(dataset);
        println!(
            "\n-- {} (n = {}, d = {}) --",
            env.label,
            env.data.len(),
            env.data.dim()
        );
        println!(
            "{:<12} {:>7} {:>12} {:>9} {:>9}",
            "Algorithm", "knob", "Query(ms)", "Recall", "Ratio"
        );
        for algo in c_algos {
            for &c in &cs {
                let (index, build_s) = algo.build(&env, c);
                let row = evaluate(index.as_ref(), &mut env, k, build_s);
                println!(
                    "{:<12} {:>7.2} {:>12.3} {:>9.4} {:>9.4}",
                    row.algo, c, row.query_ms, row.recall, row.ratio
                );
            }
        }
        // LCCS-LSH trades time for accuracy through its probe budget.
        for &p in &probes {
            let params = LccsParams {
                probes: p,
                ..Default::default()
            };
            let start = std::time::Instant::now();
            let index = LccsLsh::build(Arc::clone(&env.data), &params);
            let build_s = start.elapsed().as_secs_f64();
            let row = evaluate(&index, &mut env, k, build_s);
            println!(
                "{:<12} {:>7} {:>12.3} {:>9.4} {:>9.4}",
                row.algo, p, row.query_ms, row.recall, row.ratio
            );
        }
    }
    println!(
        "\nPaper shape to verify: smaller c (or more probes) costs time and\n\
         buys accuracy; the DB-LSH curve dominates — least time to reach\n\
         any given recall/ratio level."
    );
}
