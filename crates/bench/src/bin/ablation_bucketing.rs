//! Ablation (Section VI-B.1): DB-LSH vs FB-LSH with the number of hash
//! functions K x L held equal — isolating the value of query-centric
//! dynamic bucketing over fixed bucketing.
//!
//! Run: `cargo run -p dblsh-bench --release --bin ablation_bucketing`

use dblsh_bench::{evaluate, print_rows, Algo, Env};
use dblsh_data::registry::PaperDataset;

fn main() {
    let k = 50;
    let c = 1.5;
    println!("== Ablation: dynamic vs fixed bucketing (same K x L) ==");
    for dataset in [
        PaperDataset::Audio,
        PaperDataset::Mnist,
        PaperDataset::Gist,
        PaperDataset::TinyImages80M,
    ] {
        let mut env = Env::paper(dataset);
        let mut rows = Vec::new();
        for algo in [Algo::DbLsh, Algo::FbLsh] {
            let (index, build_s) = algo.build(&env, c);
            rows.push(evaluate(index.as_ref(), &mut env, k, build_s));
        }
        print_rows(&format!("{} (n = {})", env.label, env.data.len()), &rows);
    }
    println!(
        "\nPaper shape to verify: \"DB-LSH saves 10-70% of the query time\n\
         compared to FB-LSH but reaches a higher recall and smaller overall\n\
         ratio\" — dynamic buckets need fewer candidates for more accuracy."
    );
}
