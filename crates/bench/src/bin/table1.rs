//! Table I: comparison of typical LSH methods — index size and query cost
//! expressions, with the paper's exponents evaluated numerically.
//!
//! Run: `cargo run -p dblsh-bench --release --bin table1`

use dblsh_math::{alpha_exponent, rho_dynamic, rho_static};

fn main() {
    println!("== Table I: Comparison of Typical LSH Methods ==\n");
    println!(
        "{:<12} {:<9} {:<14} {:<26} {:<22} Comment",
        "Algorithm", "Indexing", "Query", "Index Size", "Query Cost"
    );
    let rows = [
        (
            "DB-LSH",
            "Dynamic",
            "Query-centric",
            "O(n^(1+rho*) d log n)",
            "O(n^rho* d log n)",
            "rho* <= 1/c^alpha",
        ),
        (
            "E2LSH",
            "Static",
            "Query-oblivious",
            "O(M n^(1+rho) d log n)",
            "O(n^rho d log n)",
            "rho <= 1/c",
        ),
        (
            "LSB-Forest",
            "Static",
            "Query-oblivious",
            "O(n^(1+rho) d log n)",
            "O(n^rho d log n)",
            "rho <= 1/c, c >= 2",
        ),
        (
            "QALSH",
            "Dynamic",
            "Query-centric",
            "O(n K)",
            "O(n K + d)",
            "K = O(log n)",
        ),
        (
            "VHP",
            "Dynamic",
            "Query-centric",
            "O(n K)",
            "O(n (K + d))",
            "K = O(1)",
        ),
        (
            "R2LSH",
            "Dynamic",
            "Query-centric",
            "O(n K)",
            "O(n (K + d))",
            "K = O(1)",
        ),
        (
            "SRS",
            "Dynamic",
            "Query-centric",
            "O(n)",
            "O(beta n (log n + d))",
            "beta << 1",
        ),
        (
            "PM-LSH",
            "Dynamic",
            "Query-centric",
            "O(n)",
            "O(beta n d)",
            "beta << 1",
        ),
    ];
    for (algo, indexing, query, size, cost, comment) in rows {
        println!("{algo:<12} {indexing:<9} {query:<14} {size:<26} {cost:<22} {comment}");
    }

    println!("\n-- exponents evaluated at the paper's settings --");
    println!(
        "{:<8} {:>10} {:>12} {:>10} {:>12}",
        "c", "rho*", "1/c^alpha", "rho", "1/c"
    );
    let alpha = alpha_exponent(2.0);
    println!("(w0 = 4c^2, gamma = 2, alpha = {alpha:.3})");
    for c in [1.2, 1.5, 2.0, 3.0, 4.0] {
        let w = 4.0 * c * c;
        println!(
            "{:<8.1} {:>10.5} {:>12.5} {:>10.5} {:>12.5}",
            c,
            rho_dynamic(c, w),
            c.powf(-alpha),
            rho_static(c, w),
            1.0 / c
        );
    }
}
