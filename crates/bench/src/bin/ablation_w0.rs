//! Ablation (Lemma 3 discussion): sweep the base bucket width
//! `w0 = 2 gamma c^2` and report alpha(gamma), rho*, and the measured
//! candidates / recall — showing how wider buckets buy a smaller exponent
//! until candidate quality saturates.
//!
//! Run: `cargo run -p dblsh-bench --release --bin ablation_w0`

use std::sync::Arc;

use dblsh_bench::{evaluate, Env};
use dblsh_core::{DbLsh, DbLshParams};
use dblsh_data::registry::PaperDataset;
use dblsh_math::{alpha_exponent, rho_dynamic};

fn main() {
    let k = 50;
    let c = 1.5;
    println!("== Ablation: base bucket width w0 = 2 gamma c^2 (c = {c}) ==");
    let mut env = Env::paper(PaperDataset::Deep1M);
    println!(
        "dataset {} (n = {}, d = {})\n",
        env.label,
        env.data.len(),
        env.data.dim()
    );
    println!(
        "{:>6} {:>8} {:>9} {:>9} {:>12} {:>9} {:>9} {:>11}",
        "gamma", "w0", "alpha", "rho*", "Query(ms)", "Recall", "Ratio", "Candidates"
    );
    for gamma in [0.25, 0.5, 1.0, 2.0, 3.0, 4.0] {
        let w0 = 2.0 * gamma * c * c;
        let params = DbLshParams::paper_defaults(env.data.len())
            .with_c(c)
            .with_w0(w0)
            .with_r_min(env.r_hint);
        let start = std::time::Instant::now();
        let index = DbLsh::build(Arc::clone(&env.data), &params).expect("DB-LSH build");
        let build_s = start.elapsed().as_secs_f64();
        let row = evaluate(&index, &mut env, k, build_s);
        println!(
            "{:>6.2} {:>8.2} {:>9.4} {:>9.4} {:>12.3} {:>9.4} {:>9.4} {:>11.0}",
            gamma,
            w0,
            alpha_exponent(gamma),
            rho_dynamic(c, w0),
            row.query_ms,
            row.recall,
            row.ratio,
            row.candidates
        );
    }
    println!(
        "\nShape to verify: alpha grows with gamma (rho* shrinks), while\n\
         overly small gamma misses neighbors (low recall) and overly large\n\
         gamma floods the windows with far candidates."
    );
}
