//! Cold-start harness: measure restart-from-snapshot against
//! rebuild-from-raw-vectors, and assert query parity on every path —
//! the CI gate for the persistence layer.
//!
//! Builds an index over a seeded synthetic cloud, drives a churn phase
//! (`--remove-frac` of the points tombstoned, then compacted), and
//! round-trips both the single index (`DbLsh::save`/`load`) and a
//! sharded fleet (`ShardedDbLsh::save_dir`/`load_dir`) through disk,
//! asserting byte-identical canonical answers at every step and
//! printing build vs save vs load wall times plus snapshot sizes.
//!
//! Run: `cargo run -p dblsh-bench --release --bin cold_start -- \
//!           --n 20k --remove-frac 0.5`
//!
//! Flags (all optional): `--n` points (default 20k), `--dim` (24),
//! `--queries` (50), `--k` (10), `--shards` (4), `--remove-frac`
//! fraction of bulk points tombstoned in the churn phase (0.5),
//! `--seed` (7).

use std::sync::Arc;
use std::time::Instant;

use dblsh_core::{DbLsh, DbLshParams, SearchOptions};
use dblsh_data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};
use dblsh_data::Dataset;
use dblsh_serve::{ShardPolicy, ShardedDbLsh};

#[derive(Debug, Clone)]
struct Args {
    n: usize,
    dim: usize,
    queries: usize,
    k: usize,
    shards: usize,
    remove_frac: f64,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            n: 20_000,
            dim: 24,
            queries: 50,
            k: 10,
            shards: 4,
            remove_frac: 0.5,
            seed: 7,
        }
    }
}

fn parse_count(s: &str) -> usize {
    let lower = s.trim().to_ascii_lowercase();
    let (digits, mult) = match lower.strip_suffix(['k', 'm']) {
        Some(d) if lower.ends_with('k') => (d, 1_000),
        Some(d) => (d, 1_000_000),
        None => (lower.as_str(), 1),
    };
    digits
        .parse::<usize>()
        .unwrap_or_else(|_| panic!("not a count: {s:?}"))
        * mult
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--n" => args.n = parse_count(&value("--n")),
            "--dim" => args.dim = parse_count(&value("--dim")),
            "--queries" => args.queries = parse_count(&value("--queries")),
            "--k" => args.k = parse_count(&value("--k")),
            "--shards" => args.shards = parse_count(&value("--shards")),
            "--remove-frac" => {
                args.remove_frac = value("--remove-frac").parse().expect("remove fraction")
            }
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            other => panic!("unknown flag {other:?} (see the module docs)"),
        }
    }
    assert!(
        (0.0..1.0).contains(&args.remove_frac),
        "--remove-frac must be in [0, 1)"
    );
    args
}

fn assert_canonical_parity(a: &DbLsh, b: &DbLsh, queries: &Dataset, k: usize, what: &str) {
    let opts = SearchOptions::default();
    for qi in 0..queries.len() {
        let q = queries.point(qi);
        let ra = a.search_canonical(q, k, &opts).expect("query");
        let rb = b.search_canonical(q, k, &opts).expect("query");
        assert_eq!(ra.neighbors, rb.neighbors, "{what}: query {qi} diverges");
        assert_eq!(ra.stats, rb.stats, "{what}: query {qi} counters diverge");
    }
}

fn main() {
    let args = parse_args();
    println!("== cold_start: {args:?} ==");
    let mut data = gaussian_mixture(&MixtureConfig {
        n: args.n + args.queries,
        dim: args.dim,
        clusters: 30,
        cluster_std: 1.0,
        spread: 60.0,
        noise_frac: 0.02,
        seed: args.seed,
    });
    let queries = split_queries(&mut data, args.queries, args.seed ^ 0xC01D);
    let data = Arc::new(data);
    let params = DbLshParams::paper_defaults(data.len())
        .with_r_min(0.5)
        .with_seed(args.seed);

    let dir = std::env::temp_dir().join(format!("dblsh-cold-start-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");

    // Fresh build vs snapshot restart.
    let t = Instant::now();
    let mut index = DbLsh::build(Arc::clone(&data), &params).expect("build");
    let build_s = t.elapsed().as_secs_f64();
    let snap = dir.join("index.dblsh");
    let t = Instant::now();
    index.save_file(&snap).expect("save");
    let save_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let loaded = DbLsh::load_file(&snap).expect("load");
    let load_s = t.elapsed().as_secs_f64();
    loaded.check_invariants();
    assert_canonical_parity(&index, &loaded, &queries, args.k, "fresh snapshot");
    let snap_mb = std::fs::metadata(&snap).expect("stat").len() as f64 / (1024.0 * 1024.0);
    println!(
        "fresh:  build {:.3}s | save {:.3}s ({snap_mb:.2} MB) | load {:.3}s ({:.1}x faster than build)",
        build_s,
        save_s,
        load_s,
        build_s / load_s.max(1e-9),
    );

    // Churn phase: tombstone, compact, snapshot again — the restartable
    // long-running shard scenario.
    let removes = (args.n as f64 * args.remove_frac) as u32;
    for id in 0..removes {
        index.remove(id * (args.n as u32 / removes.max(1))).ok();
    }
    let dead_mb = index.memory_breakdown().dead_bytes as f64 / (1024.0 * 1024.0);
    let t = Instant::now();
    let cstats = index.compact();
    let compact_s = t.elapsed().as_secs_f64();
    assert_eq!(index.memory_breakdown().dead_bytes, 0);
    let t = Instant::now();
    index.save_file(&snap).expect("save churned");
    let churn_save_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let reloaded = DbLsh::load_file(&snap).expect("load churned");
    let churn_load_s = t.elapsed().as_secs_f64();
    reloaded.check_invariants();
    assert_canonical_parity(&index, &reloaded, &queries, args.k, "churned snapshot");
    let churn_mb = std::fs::metadata(&snap).expect("stat").len() as f64 / (1024.0 * 1024.0);
    println!(
        "churn:  {} rows compacted in {compact_s:.3}s (reclaimed {dead_mb:.2} MB dead) | \
         save {churn_save_s:.3}s ({churn_mb:.2} MB) | load {churn_load_s:.3}s",
        cstats.dropped_rows,
    );

    // Fleet round trip: save_dir/load_dir with parity against the
    // restored single index (both run the canonical ladder).
    let sharded =
        ShardedDbLsh::build_with_params(&data, &params, args.shards, ShardPolicy::RoundRobin)
            .expect("sharded build");
    let fleet_dir = dir.join("fleet");
    let t = Instant::now();
    sharded.save_dir(&fleet_dir).expect("save_dir");
    let fleet_save_s = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let fleet = ShardedDbLsh::load_dir(&fleet_dir).expect("load_dir");
    let fleet_load_s = t.elapsed().as_secs_f64();
    fleet.check_invariants();
    let opts = SearchOptions::default();
    let reference = DbLsh::build(Arc::clone(&data), &params).expect("reference build");
    for qi in 0..queries.len() {
        let q = queries.point(qi);
        let s = fleet.k_ann(q, args.k).expect("fleet query");
        let u = reference.search_canonical(q, args.k, &opts).expect("query");
        assert_eq!(s.ids(), u.ids(), "restored fleet diverges at query {qi}");
        assert_eq!(s.stats, u.stats);
    }
    println!(
        "fleet:  {} shards | save_dir {fleet_save_s:.3}s | load_dir {fleet_load_s:.3}s | \
         parity on {} queries",
        args.shards,
        queries.len(),
    );

    std::fs::remove_dir_all(&dir).ok();
    println!("cold_start OK");
}
