//! # db-lsh — DB-LSH and its full evaluation stack, in Rust
//!
//! Facade crate re-exporting the whole workspace: the DB-LSH index
//! ([`DbLsh`]), every baseline of the paper's evaluation ([`baselines`]),
//! the substrates (R*-tree, B+-tree, datasets, LSH math) and the common
//! [`AnnIndex`] trait.
//!
//! ```
//! use db_lsh::{DbLsh, DbLshParams};
//! use db_lsh::data::synthetic::{gaussian_mixture, MixtureConfig};
//! use std::sync::Arc;
//!
//! let data = Arc::new(gaussian_mixture(&MixtureConfig {
//!     n: 2000, dim: 32, ..Default::default()
//! }));
//! let index = DbLsh::build(Arc::clone(&data), &DbLshParams::paper_defaults(data.len()));
//! let top10 = index.k_ann(data.point(0), 10);
//! assert_eq!(top10.neighbors[0].id, 0); // the point itself
//! ```

pub use dblsh_core::{DbLsh, DbLshParams, GaussianHasher};
pub use dblsh_data::{AnnIndex, Neighbor, QueryStats, SearchResult};

/// Dataset substrate: synthetic generators, fvecs I/O, ground truth,
/// metrics, paper-dataset registry.
pub use dblsh_data as data;

/// The baseline algorithms of the paper's evaluation.
pub use dblsh_baselines as baselines;

/// R*-tree multi-dimensional index.
pub use dblsh_index as index;

/// B+-tree with bidirectional cursors.
pub use dblsh_bptree as bptree;

/// LSH collision probabilities and parameter theory.
pub use dblsh_math as math;
