//! # db-lsh — DB-LSH and its full evaluation stack, in Rust
//!
//! Facade crate re-exporting the whole workspace: the DB-LSH index
//! ([`DbLsh`]) with its builder-first, fallible, dynamic API, every
//! baseline of the paper's evaluation ([`baselines`]), the substrates
//! (R*-tree, B+-tree, datasets, LSH math) and the common [`AnnIndex`]
//! trait.
//!
//! ## Building an index
//!
//! Construction goes through [`DbLshBuilder`]: every knob is chainable,
//! defaults are resolved against the dataset at build time, and all
//! validation surfaces as [`DbLshError`] — empty datasets, dimension
//! mismatches and out-of-domain parameters are `Err` values, never
//! panics.
//!
//! ```
//! use db_lsh::{DbLshBuilder, DbLshError};
//! use db_lsh::data::synthetic::{gaussian_mixture, MixtureConfig};
//!
//! let data = gaussian_mixture(&MixtureConfig {
//!     n: 2000, dim: 32, ..Default::default()
//! });
//! let index = DbLshBuilder::new()
//!     .l(5)                // number of projected spaces / R*-trees
//!     .t(64)               // candidate budget constant (2tL + k)
//!     .auto_r_min()        // estimate the radius-ladder start from data
//!     .build(data)?;
//!
//! let query = index.data().point(0).to_vec();
//! let top10 = index.k_ann(&query, 10)?;
//! assert_eq!(top10.neighbors[0].id, 0); // the point itself
//! # Ok::<(), DbLshError>(())
//! ```
//!
//! ## Queries: single, tuned, batched
//!
//! * [`DbLsh::k_ann`] — one (c,k)-ANN query with the index defaults;
//! * [`DbLsh::search_with`] — per-query overrides via [`SearchOptions`]
//!   (candidate budget, radius-ladder start, round cap, stats on/off);
//! * [`DbLsh::search_batch`] — a [`Dataset`](data::Dataset) of query rows
//!   fanned across every core;
//! * [`DbLsh::r_c_nn`] — a single (r,c)-NN probe (Definition 2);
//! * [`DbLsh::k_ann_incremental`] — ladder-free best-first browsing.
//!
//! ## Dynamic updates
//!
//! Query-based dynamic bucketing stores *projections*, not buckets, so
//! the index updates in place: [`DbLsh::insert`] projects a new point
//! into all `L` R*-trees, [`DbLsh::remove`] deletes one and tombstones
//! its row. No rebuild, no bucket re-quantization — the property that
//! distinguishes DB-LSH from every static `(K, L)`-index baseline in
//! [`baselines`].
//!
//! ```
//! # use db_lsh::DbLshBuilder;
//! # use db_lsh::data::synthetic::{gaussian_mixture, MixtureConfig};
//! # let data = gaussian_mixture(&MixtureConfig { n: 500, dim: 16, ..Default::default() });
//! let mut index = DbLshBuilder::new().build(data).unwrap();
//! let id = index.insert(&vec![0.5; 16]).unwrap();
//! assert!(index.contains(id));
//! assert!(index.remove(id).unwrap());
//! assert!(!index.contains(id));
//! ```
//!
//! ## Serving: shards, workers, saturation
//!
//! The [`serve`] crate layers a concurrent serving engine above the
//! core index:
//!
//! * [`ShardedDbLsh`] — N independent `DbLsh` shards behind one
//!   *global* id space (external ids stay the caller's row indexes;
//!   shards relabel internally, invisibly). Bulk builds partition by a
//!   [`ShardPolicy`], inserts route to the least-loaded shard, removes
//!   route through the id→shard map. Every shard sits behind its own
//!   `RwLock`: readers never block each other, a writer blocks only its
//!   shard.
//! * Queries run the **canonical round-exhaustive ladder**
//!   ([`DbLsh::search_canonical`]): per-round candidates are merged
//!   across shards in canonical `(distance, id)` order, so answers are
//!   byte-identical to an unsharded index over the same data — for any
//!   shard count, proven by property tests.
//! * [`Engine`] — a long-lived worker pool draining a bounded request
//!   queue (searches, inserts, removes) with per-request
//!   [`QueryStats`] aggregated into [`EngineStats`] (QPS, p50/p99
//!   latency, candidates verified). The `saturate` binary in
//!   `dblsh-bench` drives it with mixed read/write workloads at
//!   increasing worker counts.
//!
//! ## Durability and space reclamation
//!
//! Removes only *tombstone*; under sustained churn [`DbLsh::compact`]
//! rewrites the store, the dataset rows and the id maps without the dead
//! rows — external ids are preserved (never recycled) and
//! canonical-mode answers are byte-identical. A [`ShardedDbLsh`] can
//! compact automatically per shard via a [`CompactionPolicy`]. Every
//! index snapshots to a versioned, checksummed binary format:
//! [`DbLsh::save`]/[`DbLsh::load`] for one index,
//! [`ShardedDbLsh::save_dir`]/[`ShardedDbLsh::load_dir`] for a whole
//! serving fleet — corrupt or truncated files surface as typed
//! [`DbLshError`]s, never panics.
//!
//! ```
//! use std::sync::Arc;
//! use db_lsh::{DbLshBuilder, Engine, EngineConfig, ShardPolicy, ShardedDbLsh};
//! use db_lsh::data::synthetic::{gaussian_mixture, MixtureConfig};
//!
//! let data = gaussian_mixture(&MixtureConfig { n: 1000, dim: 16, ..Default::default() });
//! let index = ShardedDbLsh::build(
//!     &data, &DbLshBuilder::new().l(3), 4, ShardPolicy::RoundRobin,
//! ).unwrap();
//! let engine = Engine::start(Arc::new(index), EngineConfig::default());
//! let top5 = engine.search(data.point(0), 5).wait().unwrap();
//! assert_eq!(top5.neighbors[0].id, 0);
//! ```
//!
//! ## Network service
//!
//! The [`net`] crate puts a TCP front door on the engine: a
//! length-prefixed, CRC-checked binary wire protocol (framing shared
//! with the snapshot files), a threaded [`DbLshServer`] that inherits
//! the engine's bounded-queue admission control (full queue → typed
//! `Busy` over the wire) and drains gracefully on shutdown, and a
//! pipelined blocking [`DbLshClient`]. Answers over TCP are
//! byte-identical to [`DbLsh::search_canonical`] on the same data. The
//! `loadgen` binary in `dblsh-bench` replays deterministic query logs
//! against a live server and reports QPS/p50/p99.

pub use dblsh_core::{
    CompactionStats, DbLsh, DbLshBuilder, DbLshError, DbLshParams, GaussianHasher, SearchOptions,
};
pub use dblsh_data::{AnnIndex, Neighbor, QueryStats, SearchResult};
pub use dblsh_net::{DbLshClient, DbLshServer, ServerConfig};
pub use dblsh_serve::{
    CompactionPolicy, Engine, EngineConfig, EngineStats, ShardPolicy, ShardedDbLsh,
};

/// Dataset substrate: synthetic generators, fvecs I/O, ground truth,
/// metrics, paper-dataset registry, and the [`DbLshError`] type.
pub use dblsh_data as data;

/// The baseline algorithms of the paper's evaluation.
pub use dblsh_baselines as baselines;

/// Sharded concurrent serving: [`ShardedDbLsh`], the [`Engine`] worker
/// pool, and the saturation counters.
pub use dblsh_serve as serve;

/// TCP front door: binary wire protocol, threaded server with admission
/// control and graceful drain, pipelined blocking client.
pub use dblsh_net as net;

/// R*-tree multi-dimensional index.
pub use dblsh_index as index;

/// B+-tree with bidirectional cursors.
pub use dblsh_bptree as bptree;

/// LSH collision probabilities and parameter theory.
pub use dblsh_math as math;

/// Telemetry plane: unified metrics registry, per-stage query tracing,
/// slow-query ring log, and Prometheus/JSON exposition.
pub use dblsh_telemetry as telemetry;
