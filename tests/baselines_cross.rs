//! Cross-algorithm integration tests: every method in the evaluation must
//! satisfy the same behavioural contract on a shared workload.

use std::sync::Arc;

use db_lsh::baselines::{
    e2lsh::E2LshParams, lccs::LccsParams, lsb::LsbParams, pm_lsh::PmLshParams, qalsh::QalshParams,
    r2lsh::R2LshParams, vhp::VhpParams, E2Lsh, FbLsh, LccsLsh, LinearScan, LsbForest, PmLsh, Qalsh,
    R2Lsh, Vhp,
};
use db_lsh::data::ground_truth::exact_knn;
use db_lsh::data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};
use db_lsh::data::{metrics, AnnIndex, Dataset};
use db_lsh::{DbLsh, DbLshParams};

fn workload() -> (Arc<Dataset>, Dataset) {
    let mut data = gaussian_mixture(&MixtureConfig {
        n: 4000,
        dim: 24,
        clusters: 30,
        cluster_std: 1.0,
        spread: 60.0,
        noise_frac: 0.02,
        seed: 777,
    });
    let queries = split_queries(&mut data, 15, 9);
    (Arc::new(data), queries)
}

fn all_indexes(data: &Arc<Dataset>) -> Vec<Box<dyn AnnIndex>> {
    let n = data.len();
    let dbp = DbLshParams::paper_defaults(n).with_r_min(0.5);
    vec![
        Box::new(DbLsh::build(Arc::clone(data), &dbp).expect("DB-LSH build")),
        Box::new(FbLsh::build(Arc::clone(data), &dbp, 24)),
        Box::new(E2Lsh::build(
            Arc::clone(data),
            &E2LshParams::paper_like(n).with_r_min(0.5),
        )),
        Box::new(Qalsh::build(
            Arc::clone(data),
            &QalshParams::derive(n, 1.5).with_r_min(0.5),
        )),
        Box::new(Vhp::build(
            Arc::clone(data),
            &VhpParams::derive(n, 1.5).with_r_min(0.5),
        )),
        Box::new(R2Lsh::build(
            Arc::clone(data),
            &R2LshParams::derive(n, 1.5).with_r_min(0.5),
        )),
        Box::new(PmLsh::build(Arc::clone(data), &PmLshParams::default())),
        Box::new(LsbForest::build(Arc::clone(data), &LsbParams::default())),
        Box::new(LccsLsh::build(Arc::clone(data), &LccsParams::default())),
        Box::new(LinearScan::build(Arc::clone(data))),
    ]
}

#[test]
fn uniform_contract_for_every_algorithm() {
    let (data, queries) = workload();
    let indexes = all_indexes(&data);
    let names: Vec<&str> = indexes.iter().map(|i| i.name()).collect();
    // distinct display names
    let mut dedup = names.clone();
    dedup.sort_unstable();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "duplicate algorithm names");

    for index in &indexes {
        for qi in 0..3 {
            let res = index.search(queries.point(qi), 10).unwrap();
            assert!(
                res.neighbors.len() <= 10,
                "{} returned more than k",
                index.name()
            );
            assert!(
                res.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist),
                "{} results not sorted",
                index.name()
            );
            let mut ids = res.ids();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(
                ids.len(),
                res.neighbors.len(),
                "{} returned duplicate ids",
                index.name()
            );
            for n in &res.neighbors {
                assert!((n.id as usize) < data.len(), "{} bad id", index.name());
                assert!(n.dist.is_finite() && n.dist >= 0.0, "{}", index.name());
            }
        }
    }
}

#[test]
fn every_algorithm_beats_random_guessing() {
    let (data, queries) = workload();
    let truth = exact_knn(&data, &queries, 10);
    for index in all_indexes(&data) {
        let mut recalls = Vec::new();
        for (qi, t) in truth.iter().enumerate() {
            let res = index.search(queries.point(qi), 10).unwrap();
            recalls.push(metrics::recall(&res.neighbors, t));
        }
        let recall = metrics::mean(&recalls);
        // random guessing on 4000 points scores ~10/4000
        assert!(
            recall > 0.1,
            "{} recall {recall} no better than chance",
            index.name()
        );
    }
}

#[test]
fn dblsh_is_most_accurate_at_paper_settings() {
    // The Table IV headline on a fixed seeded workload: DB-LSH's recall
    // is at least as high as every approximate competitor's.
    let (data, queries) = workload();
    let truth = exact_knn(&data, &queries, 10);
    let mut scores: Vec<(String, f64)> = Vec::new();
    for index in all_indexes(&data) {
        if index.name() == "LinearScan" {
            continue;
        }
        let mut recalls = Vec::new();
        for (qi, t) in truth.iter().enumerate() {
            let res = index.search(queries.point(qi), 10).unwrap();
            recalls.push(metrics::recall(&res.neighbors, t));
        }
        scores.push((index.name().to_string(), metrics::mean(&recalls)));
    }
    let dblsh = scores
        .iter()
        .find(|(n, _)| n == "DB-LSH")
        .expect("DB-LSH present")
        .1;
    for (name, score) in &scores {
        assert!(
            dblsh + 0.05 >= *score,
            "{name} ({score}) clearly beats DB-LSH ({dblsh}) at paper settings"
        );
    }
}

#[test]
fn index_sizes_are_reported() {
    let (data, _) = workload();
    for index in all_indexes(&data) {
        if index.name() == "LinearScan" {
            assert_eq!(index.index_size_bytes(), 0);
        } else {
            assert!(
                index.index_size_bytes() > 0,
                "{} reports zero index size",
                index.name()
            );
        }
    }
}
