//! End-to-end integration tests across crates: the full DB-LSH pipeline,
//! the paper's quality guarantees, and head-to-head behaviour against the
//! baselines on a shared workload.

use std::sync::Arc;

use db_lsh::baselines::{pm_lsh::PmLshParams, FbLsh, LinearScan, PmLsh};
use db_lsh::data::ground_truth::exact_knn;
use db_lsh::data::synthetic::{gaussian_mixture, split_queries, MixtureConfig};
use db_lsh::data::{metrics, AnnIndex, Dataset};
use db_lsh::{DbLsh, DbLshBuilder, DbLshParams};

fn workload(seed: u64) -> (Arc<Dataset>, Dataset) {
    let mut data = gaussian_mixture(&MixtureConfig {
        n: 5000,
        dim: 32,
        clusters: 40,
        cluster_std: 1.0,
        spread: 60.0,
        noise_frac: 0.03,
        seed,
    });
    let queries = split_queries(&mut data, 25, seed ^ 1);
    (Arc::new(data), queries)
}

fn dblsh_index(data: &Arc<Dataset>) -> DbLsh {
    DbLshBuilder::new()
        .auto_r_min()
        .build(Arc::clone(data))
        .expect("DB-LSH build")
}

#[test]
fn dblsh_end_to_end_recall() {
    let (data, queries) = workload(100);
    let index = dblsh_index(&data);
    let truth = exact_knn(&data, &queries, 20);
    let mut recalls = Vec::new();
    let mut ratios = Vec::new();
    for (qi, t) in truth.iter().enumerate() {
        let res = index.k_ann(queries.point(qi), 20).unwrap();
        recalls.push(metrics::recall(&res.neighbors, t));
        let r = metrics::overall_ratio(&res.neighbors, t);
        if r.is_finite() {
            ratios.push(r);
        }
    }
    let recall = metrics::mean(&recalls);
    let ratio = metrics::mean(&ratios);
    assert!(recall > 0.85, "recall = {recall}");
    assert!(ratio < 1.05, "ratio = {ratio}");
}

#[test]
fn c2_ann_guarantee_holds_with_margin() {
    // Theorem 1: each c-ANN query succeeds (returns a point within
    // c^2 r*) with probability >= 1/2 - 1/e ~ 0.13. Measured success on
    // clustered data is far higher; assert a conservative floor across
    // seeds to keep the test robust.
    let mut successes = 0;
    let mut total = 0;
    for seed in [1u64, 2, 3] {
        let (data, queries) = workload(seed);
        let index = dblsh_index(&data);
        let truth = exact_knn(&data, &queries, 1);
        let c2 = index.params().c * index.params().c;
        for (qi, t) in truth.iter().enumerate() {
            total += 1;
            if let (Some(hit), _) = index.c_ann(queries.point(qi)).unwrap() {
                if (hit.dist as f64) <= c2 * t[0].dist as f64 + 1e-6 {
                    successes += 1;
                }
            }
        }
    }
    let rate = successes as f64 / total as f64;
    assert!(rate > 0.6, "success rate {rate} (theory floor 0.13)");
}

#[test]
fn dynamic_beats_fixed_bucketing_on_accuracy() {
    // The paper's headline ablation: same hash functions, same budget —
    // query-centric buckets must not lose to fixed buckets.
    let mut db_total = 0.0;
    let mut fb_total = 0.0;
    for seed in [11u64, 12, 13] {
        let (data, queries) = workload(seed);
        let mut params = DbLshParams::paper_defaults(data.len());
        params.r_min = DbLsh::estimate_r_min(&data, &params, 200);
        let db = DbLsh::build(Arc::clone(&data), &params).expect("DB-LSH build");
        let fb = FbLsh::build(Arc::clone(&data), &params, 24);
        let truth = exact_knn(&data, &queries, 10);
        for (qi, t) in truth.iter().enumerate() {
            let q = queries.point(qi);
            db_total += metrics::recall(&db.search(q, 10).unwrap().neighbors, t);
            fb_total += metrics::recall(&fb.search(q, 10).unwrap().neighbors, t);
        }
    }
    assert!(
        db_total >= fb_total,
        "DB-LSH recall sum {db_total} < FB-LSH {fb_total}"
    );
}

#[test]
fn all_algorithms_agree_with_exact_on_easy_queries() {
    // Query with an indexed point's own vector (true NN distance 0).
    // Exhaustive and candidate-ordered methods return the point itself;
    // DB-LSH's ladder may legally terminate with any point within c*r of
    // the query (Definition 2 case 1), so its guarantee at r* = 0
    // degrades to c^2 * r_min — assert exactly that contract.
    let (data, _) = workload(200);
    let q = data.point(77).to_vec();

    let linear = LinearScan::build(Arc::clone(&data));
    let pmlsh = PmLsh::build(Arc::clone(&data), &PmLshParams::default());
    for index in [&linear as &dyn AnnIndex, &pmlsh] {
        let res = index.search(&q, 3).unwrap();
        assert_eq!(
            res.neighbors[0].id,
            77,
            "{} did not return the query point first",
            index.name()
        );
        assert_eq!(res.neighbors[0].dist, 0.0, "{}", index.name());
    }

    let dblsh = dblsh_index(&data);
    let res = dblsh.search(&q, 3).unwrap();
    let bound = dblsh.params().c * dblsh.params().c * dblsh.params().r_min;
    assert!(
        (res.neighbors[0].dist as f64) <= bound,
        "DB-LSH first result {} violates the c^2 r_min bound {bound}",
        res.neighbors[0].dist
    );
}

#[test]
fn search_results_never_exceed_k_and_are_sorted() {
    let (data, queries) = workload(300);
    let index = dblsh_index(&data);
    for k in [1usize, 7, 50] {
        for qi in 0..5 {
            let res = index.search(queries.point(qi), k).unwrap();
            assert!(res.neighbors.len() <= k);
            assert!(res.neighbors.windows(2).all(|w| w[0].dist <= w[1].dist));
        }
    }
}

#[test]
fn deterministic_given_seed() {
    let (data, queries) = workload(400);
    let a = dblsh_index(&data);
    let b = dblsh_index(&data);
    for qi in 0..queries.len().min(5) {
        let ra = a.k_ann(queries.point(qi), 10).unwrap();
        let rb = b.k_ann(queries.point(qi), 10).unwrap();
        assert_eq!(ra.ids(), rb.ids(), "query {qi} differs between builds");
    }
}

#[test]
fn serving_layer_end_to_end() {
    use db_lsh::{Engine, EngineConfig, SearchOptions, ShardPolicy, ShardedDbLsh};

    let (data, queries) = workload(500);
    let builder = db_lsh::DbLshBuilder::new().auto_r_min();
    // resolve once so the sharded and unsharded indexes share parameters
    let params = builder.resolve_params_for(&data).unwrap();
    let unsharded = DbLsh::build(Arc::clone(&data), &params).unwrap();
    let sharded = ShardedDbLsh::build_with_params(&data, &params, 3, ShardPolicy::RoundRobin)
        .expect("sharded build");

    // the engine serves byte-identical answers to the unsharded
    // canonical query mode, through the whole worker-pool pipeline
    let engine = Engine::start(
        std::sync::Arc::new(sharded),
        EngineConfig {
            workers: 2,
            queue_capacity: 32,
        },
    );
    let tickets: Vec<_> = (0..queries.len())
        .map(|qi| engine.search(queries.point(qi), 10))
        .collect();
    for (qi, t) in tickets.into_iter().enumerate() {
        let served = t.wait().unwrap();
        let reference = unsharded
            .search_canonical(queries.point(qi), 10, &SearchOptions::default())
            .unwrap();
        assert_eq!(served.ids(), reference.ids(), "query {qi} diverges");
        assert_eq!(served.stats, reference.stats);
    }

    // dynamic traffic through the engine keeps the global id space dense
    let id = engine.insert(&vec![0.25; data.dim()]).wait().unwrap();
    assert_eq!(id as usize, data.len());
    assert!(engine.remove(id).wait().unwrap());
    let stats = engine.shutdown();
    assert_eq!(stats.searches as usize, queries.len());
    assert_eq!(stats.inserts, 1);
    assert_eq!(stats.removes, 1);
    assert_eq!(stats.errors, 0);
    assert!(stats.qps > 0.0);
}
