//! Integration test of the fvecs pipeline: write a dataset to disk in the
//! TEXMEX format, load it back, index it, query it — the path a user with
//! the paper's real corpora follows.

use std::sync::Arc;

use db_lsh::data::io::{load_fvecs_file, write_fvecs};
use db_lsh::data::synthetic::{gaussian_mixture, MixtureConfig};
use db_lsh::{DbLsh, DbLshParams};

#[test]
fn fvecs_roundtrip_through_disk_and_index() {
    let data = gaussian_mixture(&MixtureConfig {
        n: 1000,
        dim: 48,
        clusters: 10,
        ..Default::default()
    });
    let path = std::env::temp_dir().join(format!("dblsh_io_test_{}.fvecs", std::process::id()));
    write_fvecs(std::fs::File::create(&path).unwrap(), &data).unwrap();

    let loaded = load_fvecs_file(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(loaded, data);

    let loaded = Arc::new(loaded);
    let mut params = DbLshParams::paper_defaults(loaded.len()).with_kl(6, 3);
    params.r_min = DbLsh::estimate_r_min(&loaded, &params, 100);
    let index = DbLsh::build(Arc::clone(&loaded), &params).expect("build");
    let res = index.k_ann(loaded.point(0), 5).unwrap();
    // the true NN distance is 0 (the point itself); the ladder guarantee
    // at r* = 0 is c^2 * r_min
    let bound = params.c * params.c * params.r_min;
    assert!(!res.neighbors.is_empty());
    assert!((res.neighbors[0].dist as f64) <= bound);
}

#[test]
fn degenerate_datasets_are_handled() {
    // d = 1
    let data = Arc::new(db_lsh::data::Dataset::from_rows(&[
        vec![1.0],
        vec![2.0],
        vec![5.0],
        vec![9.0],
        vec![2.1],
    ]));
    let params = DbLshParams::paper_defaults(5)
        .with_kl(2, 2)
        .with_r_min(0.01);
    let index = DbLsh::build(Arc::clone(&data), &params).expect("build");
    let res = index.k_ann(&[2.05], 2).unwrap();
    assert_eq!(res.neighbors.len(), 2);
    // true NNs are 2.0 and 2.1 at distance 0.05; the c-approximate answer
    // must stay in that neighborhood
    assert!(res.neighbors.iter().all(|n| n.dist <= 0.2), "{res:?}");

    // n < k
    let res = index.k_ann(&[0.0], 50).unwrap();
    assert!(res.neighbors.len() <= 5);

    // all-identical dataset
    let same = Arc::new(db_lsh::data::Dataset::from_rows(&vec![vec![3.0f32; 4]; 20]));
    let params = DbLshParams::paper_defaults(20).with_kl(2, 2);
    let index = DbLsh::build(Arc::clone(&same), &params).expect("build");
    let res = index.k_ann(&[3.0f32; 4], 5).unwrap();
    assert_eq!(res.neighbors.len(), 5);
    assert!(res.neighbors.iter().all(|n| n.dist == 0.0));
}
